//! Property tests: each axis, evaluated through the full machinery, must
//! agree with its first-principles set definition on random trees.

use proptest::prelude::*;
use xmldom::{Document, NodeId, TreeBuilder};
use xpath::{evaluate, parse_xpath, Item};

/// Generate a random tree: a sequence of (depth-delta, label) instructions
/// interpreted against a builder, giving arbitrary shapes with a small
/// label alphabet so name tests hit often.
fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0u8..3, 0u8..3), 1..40).prop_map(|ops| {
        let mut b = TreeBuilder::new();
        let labels = ["a", "b", "c"];
        b.start_element("root");
        let mut depth = 1;
        for (delta, label) in ops {
            match delta {
                0 => {
                    b.start_element(labels[label as usize]);
                    depth += 1;
                }
                1 => {
                    b.leaf(labels[label as usize], format!("{label}"));
                }
                _ => {
                    if depth > 1 {
                        b.end_element();
                        depth -= 1;
                    }
                }
            }
        }
        while depth > 0 {
            b.end_element();
            depth -= 1;
        }
        b.finish()
    })
}

fn elements(doc: &Document) -> Vec<NodeId> {
    doc.all_nodes().filter(|&n| doc.is_element(n)).collect()
}

fn named(doc: &Document, name: &str) -> Vec<NodeId> {
    elements(doc)
        .into_iter()
        .filter(|&n| doc.name(n) == Some(name))
        .collect()
}

fn as_nodes(items: Vec<Item>) -> Vec<NodeId> {
    items
        .into_iter()
        .map(|i| match i {
            Item::Node(n) => n,
            Item::Attr(..) => panic!("unexpected attribute item"),
        })
        .collect()
}

fn run(doc: &Document, q: &str) -> Vec<NodeId> {
    as_nodes(evaluate(doc, &parse_xpath(q).expect("parse")).expect("eval"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn descendant_axis_definition(doc in arb_doc()) {
        // //a == all elements named a (reachable from the root by construction)
        let got = run(&doc, "//a");
        let expected = named(&doc, "a");
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn parent_is_inverse_of_child(doc in arb_doc()) {
        // /root/*/parent::root == root (if it has element children)
        let got = run(&doc, "/root/*/parent::root");
        let root = doc.document_element().expect("root");
        let has_child = doc.child_elements(root).next().is_some();
        prop_assert_eq!(got, if has_child { vec![root] } else { vec![] });
    }

    #[test]
    fn ancestor_definition(doc in arb_doc()) {
        // //b/ancestor::a == set of a's that are proper ancestors of some b
        let got = run(&doc, "//b/ancestor::a");
        let mut expected: Vec<NodeId> = named(&doc, "a")
            .into_iter()
            .filter(|&a| named(&doc, "b").iter().any(|&b| doc.is_ancestor(a, b)))
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn following_partition(doc in arb_doc()) {
        // For any element e: {self} ∪ ancestors ∪ descendants ∪ following
        // ∪ preceding partitions the element nodes (XPath 1.0 §2.2).
        let elems = elements(&doc);
        if let Some(&e) = elems.get(elems.len() / 2) {
            let name = doc.name(e).expect("element").to_string();
            // Use a positional predicate to pick exactly `e`.
            let same_name = named(&doc, &name);
            let pos = same_name.iter().position(|&n| n == e).expect("present") + 1;
            let base = format!("(//{name})[{pos}]");
            // The subset grammar has no parenthesized paths; emulate by
            // checking the partition via direct computation instead.
            let _ = base;
            let following = as_nodes(
                evaluate(&doc, &parse_xpath(&format!("//{name}/following::*")).expect("p"))
                    .expect("eval"),
            );
            let preceding = as_nodes(
                evaluate(&doc, &parse_xpath(&format!("//{name}/preceding::*")).expect("p"))
                    .expect("eval"),
            );
            // every element is classified w.r.t. at least one same-named node
            for &x in &elems {
                let in_following = following.contains(&x);
                let in_preceding = preceding.contains(&x);
                let related = same_name.iter().any(|&n| {
                    x == n || doc.is_ancestor(n, x) || doc.is_ancestor(x, n)
                });
                prop_assert!(
                    in_following || in_preceding || related,
                    "element {:?} unclassified",
                    x
                );
            }
        }
    }

    #[test]
    fn sibling_axes_definition(doc in arb_doc()) {
        // //a/following-sibling::b == b's sharing a parent with an earlier a
        let got = run(&doc, "//a/following-sibling::b");
        let mut expected: Vec<NodeId> = named(&doc, "b")
            .into_iter()
            .filter(|&b| {
                doc.parent(b).is_some_and(|p| {
                    doc.children(p).iter().any(|&s| {
                        s < b && doc.name(s) == Some("a")
                    })
                })
            })
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn preceding_sibling_definition(doc in arb_doc()) {
        let got = run(&doc, "//b/preceding-sibling::a");
        let mut expected: Vec<NodeId> = named(&doc, "a")
            .into_iter()
            .filter(|&a| {
                doc.parent(a).is_some_and(|p| {
                    doc.children(p).iter().any(|&s| {
                        s > a && doc.name(s) == Some("b")
                    })
                })
            })
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn double_slash_equals_descendant_or_self_chain(doc in arb_doc()) {
        let a = run(&doc, "//a//b");
        let b = run(&doc, "/descendant-or-self::a/descendant::b");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn wildcard_child_equals_star(doc in arb_doc()) {
        let a = run(&doc, "/root/*");
        let root = doc.document_element().expect("root");
        let expected: Vec<NodeId> = doc.child_elements(root).collect();
        prop_assert_eq!(a, expected);
    }

    #[test]
    fn results_are_in_document_order_and_unique(doc in arb_doc()) {
        for q in ["//a", "//a/ancestor::*", "//b/following::a", "//*"] {
            let got = run(&doc, q);
            for w in got.windows(2) {
                prop_assert!(w[0] < w[1], "query {} out of order", q);
            }
        }
    }
}
