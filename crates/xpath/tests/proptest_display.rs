//! Property test: `parse(display(ast))` is a fixpoint — the Display form
//! of a parsed query reparses to an identical AST (used by diagnostics
//! and the CLI, so it must not drop or reorder anything).

use proptest::prelude::*;
use xpath::{parse_xpath, Axis, Expr, LocationPath, NodeTest, Step};

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        Just(Axis::Child),
        Just(Axis::Descendant),
        Just(Axis::DescendantOrSelf),
        Just(Axis::SelfAxis),
        Just(Axis::Parent),
        Just(Axis::Ancestor),
        Just(Axis::AncestorOrSelf),
        Just(Axis::Following),
        Just(Axis::Preceding),
        Just(Axis::FollowingSibling),
        Just(Axis::PrecedingSibling),
    ]
}

fn arb_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        prop_oneof![Just("a"), Just("bc"), Just("x_y"), Just("k-w")]
            .prop_map(|n| NodeTest::Name(n.to_string())),
        Just(NodeTest::Wildcard),
        Just(NodeTest::AnyNode),
    ]
}

fn arb_leaf_path() -> impl Strategy<Value = Expr> {
    (arb_axis(), arb_test()).prop_map(|(axis, test)| {
        Expr::Path(LocationPath {
            absolute: false,
            steps: vec![Step::new(axis, test)],
        })
    })
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    let leaf_path = arb_leaf_path();
    let cmp =
        (arb_leaf_path(), prop_oneof![Just("v"), Just("42")]).prop_map(|(p, lit)| Expr::Compare {
            op: xpath::CompOp::Eq,
            lhs: Box::new(p),
            rhs: Box::new(Expr::Literal(lit.to_string())),
        });
    let leaf = prop_oneof![leaf_path, cmp];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_path() -> impl Strategy<Value = Expr> {
    proptest::collection::vec(
        (
            arb_axis(),
            arb_test(),
            proptest::option::of(arb_predicate()),
        ),
        1..5,
    )
    .prop_map(|steps| {
        let steps = steps
            .into_iter()
            .map(|(axis, test, pred)| {
                let mut s = Step::new(axis, test);
                if let Some(p) = pred {
                    s.predicates.push(p);
                }
                s
            })
            .collect();
        Expr::Path(LocationPath {
            absolute: true,
            steps,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_reparses_to_fixpoint(e in arb_path()) {
        let shown = e.to_string();
        let reparsed = parse_xpath(&shown)
            .unwrap_or_else(|err| panic!("display output must parse: {err}\nquery: {shown}"));
        // Display is a fixpoint (parse may normalize abbreviations on the
        // first round; the second round must be stable).
        prop_assert_eq!(reparsed.to_string(), shown);
    }
}
