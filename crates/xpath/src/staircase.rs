//! Staircase-join-style axis evaluation (Grust et al.; the optimization
//! the paper credits for MonetDB's wins and names as future work for PPF
//! processing, §6/§7).
//!
//! The idea: when a whole *document-ordered context list* takes a
//! descendant (or ancestor) step, most per-node work is redundant —
//! subtrees of covered context nodes are scanned many times and results
//! need deduplication and re-sorting. *Pruning* the context to its
//! covering nodes and emitting each result region exactly once makes the
//! step a single monotone scan:
//!
//! * **descendant**: drop context nodes contained in an earlier context
//!   node's subtree, then emit each remaining subtree once — the output
//!   is already in document order and duplicate-free;
//! * **ancestor**: sweep the context once, walking each node's ancestor
//!   chain only until it meets a previously-emitted ancestor (the
//!   "staircase" boundary).
//!
//! The native evaluator uses these fast paths for predicate-free
//! descendant/ancestor steps; the generic per-node path remains the
//! reference implementation and the property tests pin them together.

use std::collections::BTreeSet;

use xmldom::{Document, NodeId};

use crate::ast::NodeTest;

fn test_matches(doc: &Document, n: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(name) => doc.name(n) == Some(name.as_str()),
        NodeTest::Wildcard => doc.is_element(n),
        NodeTest::Text => doc.is_text(n),
        NodeTest::AnyNode => true,
    }
}

/// Largest node id within the subtree of `node` (preorder ids make the
/// subtree a contiguous id interval).
fn subtree_end(doc: &Document, node: NodeId) -> NodeId {
    let mut last = node;
    let mut cur = node;
    while let Some(&c) = doc.children(cur).last() {
        last = c;
        cur = c;
    }
    last
}

/// Prune a document-ordered context list to its *covering* nodes: nodes
/// whose subtree is not contained in an earlier context node's subtree.
pub fn prune_covered(doc: &Document, context: &[NodeId]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    let mut horizon: Option<NodeId> = None; // end of the last kept subtree
    for &n in context {
        match horizon {
            Some(h) if n <= h => continue, // inside the previous staircase step
            _ => {
                out.push(n);
                horizon = Some(subtree_end(doc, n));
            }
        }
    }
    out
}

/// Staircase descendant step: all nodes matching `test` that are proper
/// descendants of any context node. `context` must be in document order.
/// The result is in document order and duplicate-free by construction.
pub fn staircase_descendant(
    doc: &Document,
    context: &[NodeId],
    test: &NodeTest,
    or_self: bool,
) -> Vec<NodeId> {
    let pruned = prune_covered(doc, context);
    let mut out = Vec::new();
    for n in pruned {
        if or_self && test_matches(doc, n, test) {
            out.push(n);
        }
        // One pass over the contiguous id interval of the subtree.
        let mut stack: Vec<NodeId> = doc.children(n).iter().rev().copied().collect();
        while let Some(c) = stack.pop() {
            if test_matches(doc, c, test) {
                out.push(c);
            }
            stack.extend(doc.children(c).iter().rev().copied());
        }
    }
    out
}

/// Staircase ancestor step: all nodes matching `test` that are proper
/// ancestors of any context node. Each ancestor chain is climbed only to
/// the staircase boundary (ancestors seen before), so total work is
/// `O(context + answer)` amortized.
pub fn staircase_ancestor(
    doc: &Document,
    context: &[NodeId],
    test: &NodeTest,
    or_self: bool,
) -> Vec<NodeId> {
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for &n in context {
        if or_self && !seen.contains(&n) {
            seen.insert(n);
        }
        let mut cur = doc.parent(n);
        while let Some(p) = cur {
            if !seen.insert(p) {
                break; // boundary: this chain was climbed already
            }
            cur = doc.parent(p);
        }
    }
    seen.into_iter()
        .filter(|&n| {
            // `or_self` inserted context nodes too; re-check membership
            // logic via the test only (the set handles dedup/order).
            test_matches(doc, n, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        xmldom::parse("<r><a><b><c/><a><c/></a></b></a><a><c/></a><d><c/></d></r>").expect("xml")
    }

    fn all_named(d: &Document, name: &str) -> Vec<NodeId> {
        d.all_nodes().filter(|&n| d.name(n) == Some(name)).collect()
    }

    #[test]
    fn prune_drops_nested_contexts() {
        let d = doc();
        let contexts = all_named(&d, "a"); // the inner <a> nests in the first
        let pruned = prune_covered(&d, &contexts);
        assert_eq!(pruned.len(), 2);
        assert!(pruned.iter().all(|n| contexts.contains(n)));
    }

    #[test]
    fn descendant_matches_per_node_union() {
        let d = doc();
        let contexts = all_named(&d, "a");
        let fast = staircase_descendant(&d, &contexts, &NodeTest::Name("c".into()), false);
        // reference: union of per-node descendant scans
        let mut slow: Vec<NodeId> = Vec::new();
        for &a in &contexts {
            for c in d.descendant_elements(a) {
                if d.name(c) == Some("c") && !slow.contains(&c) {
                    slow.push(c);
                }
            }
        }
        slow.sort();
        assert_eq!(fast, slow);
        // document order, no duplicates, no post-sort needed
        for w in fast.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ancestor_matches_per_node_union() {
        let d = doc();
        let contexts = all_named(&d, "c");
        let fast = staircase_ancestor(&d, &contexts, &NodeTest::Name("a".into()), false);
        let mut slow: Vec<NodeId> = Vec::new();
        for &c in &contexts {
            let mut cur = d.parent(c);
            while let Some(p) = cur {
                if d.name(p) == Some("a") && !slow.contains(&p) {
                    slow.push(p);
                }
                cur = d.parent(p);
            }
        }
        slow.sort();
        assert_eq!(fast, slow);
    }

    #[test]
    fn or_self_variants() {
        let d = doc();
        let contexts = all_named(&d, "a");
        let dos = staircase_descendant(&d, &contexts, &NodeTest::Name("a".into()), true);
        assert_eq!(dos.len(), 3); // all three a's (self + nested)
        let aos = staircase_ancestor(&d, &contexts, &NodeTest::Name("a".into()), true);
        assert_eq!(aos.len(), 3);
    }
}
