//! XPath lexer and recursive-descent parser.
//!
//! Grammar (XPath 1.0 subset, with abbreviations):
//! ```text
//! expr       := or_expr
//! or_expr    := and_expr ('or' and_expr)*
//! and_expr   := cmp_expr ('and' cmp_expr)*
//! cmp_expr   := add_expr (('='|'!='|'<'|'<='|'>'|'>=') add_expr)?
//! add_expr   := union_expr (('+'|'-'|'div'|'mod') union_expr)*
//! union_expr := path_or_primary ('|' path_or_primary)*
//! primary    := literal | number | '(' expr ')'
//!             | 'not(' expr ')' | 'count(' expr ')' | 'position()'
//!             | 'last()' | 'contains(' expr ',' expr ')'
//! path       := ['/'] step (('/'|'//') step)*
//! step       := [axis '::' | '@'] nodetest predicate*
//!             | '.' | '..'
//! nodetest   := name | '*' | 'text()' | 'node()'
//! predicate  := '[' expr ']'     -- a bare number N means position()=N
//! ```
//! Per XPath's lexical rules, `-` inside a name (e.g. `following-sibling`,
//! `closed_auction`) is a name character; use whitespace around binary `-`.

use crate::ast::{Axis, CompOp, Expr, LocationPath, NodeTest, NumOp, Step};

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    pub message: String,
}

impl std::fmt::Display for XPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XPath parse error: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Slash,
    DSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    At,
    DColon,
    Comma,
    Pipe,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Dot,
    DDot,
    Name(String),
    Number(f64),
    Literal(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, XPathError> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |m: &str| XPathError {
        message: m.to_string(),
    };
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    out.push(Tok::DSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            b'[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'@' => {
                out.push(Tok::At);
                i += 1;
            }
            b':' => {
                if b.get(i + 1) == Some(&b':') {
                    out.push(Tok::DColon);
                    i += 2;
                } else {
                    return Err(err("single ':' (namespaces are not supported)"));
                }
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(err("expected `!=`"));
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            b'+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'.' => {
                if b.get(i + 1) == Some(&b'.') {
                    out.push(Tok::DDot);
                    i += 2;
                } else if b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    // .5 style number
                    let start = i;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: f64 = input[start..i].parse().map_err(|_| err("bad number"))?;
                    out.push(Tok::Number(n));
                } else {
                    out.push(Tok::Dot);
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = b[i];
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(err("unterminated string literal"));
                }
                out.push(Tok::Literal(input[start..j].to_string()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let n: f64 = input[start..i].parse().map_err(|_| err("bad number"))?;
                out.push(Tok::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let start = i;
                while i < b.len() {
                    let c = b[i];
                    let is_name = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || c == b'.'
                        || c >= 0x80
                        // '-' continues a name only when followed by a name
                        // character (so `a -1` lexes as Minus).
                        || (c == b'-'
                            && b.get(i + 1).is_some_and(|n| {
                                n.is_ascii_alphanumeric() || *n == b'_'
                            }));
                    if is_name {
                        i += 1;
                    } else {
                        break;
                    }
                }
                // A trailing '.' (e.g. `a.`) would have been absorbed; names
                // in XML may contain dots so that is correct.
                out.push(Tok::Name(input[start..i].to_string()));
            }
            other => return Err(err(&format!("unexpected character `{}`", other as char))),
        }
    }
    Ok(out)
}

/// Parse an XPath expression.
pub fn parse_xpath(input: &str) -> Result<Expr, XPathError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(XPathError {
            message: format!("trailing tokens at position {}", p.pos),
        });
    }
    Ok(e)
}

/// Parse an XPath that must be a (possibly union of) location path(s).
pub fn parse_path(input: &str) -> Result<Expr, XPathError> {
    let e = parse_xpath(input)?;
    match &e {
        Expr::Path(_) | Expr::Union(_) => Ok(e),
        _ => Err(XPathError {
            message: "expected a location path".to_string(),
        }),
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self, m: impl Into<String>) -> XPathError {
        XPathError {
            message: format!("{} (token {}/{})", m.into(), self.pos, self.toks.len()),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), XPathError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn eat_name(&mut self, kw: &str) -> bool {
        if let Some(Tok::Name(n)) = self.peek() {
            if n == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expr(&mut self) -> Result<Expr, XPathError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.and_expr()?;
        while self.eat_name("or") {
            let rhs = self.and_expr()?;
            lhs = match lhs {
                Expr::Or(mut xs) => {
                    xs.push(rhs);
                    Expr::Or(xs)
                }
                x => Expr::Or(vec![x, rhs]),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_name("and") {
            let rhs = self.cmp_expr()?;
            lhs = match lhs {
                Expr::And(mut xs) => {
                    xs.push(rhs);
                    Expr::And(xs)
                }
                x => Expr::And(vec![x, rhs]),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, XPathError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CompOp::Eq),
            Some(Tok::Ne) => Some(CompOp::Ne),
            Some(Tok::Lt) => Some(CompOp::Lt),
            Some(Tok::Le) => Some(CompOp::Le),
            Some(Tok::Gt) => Some(CompOp::Gt),
            Some(Tok::Ge) => Some(CompOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::Compare {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, XPathError> {
        let mut lhs = self.union_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => NumOp::Add,
                Some(Tok::Minus) => NumOp::Sub,
                Some(Tok::Name(n)) if n == "div" => NumOp::Div,
                Some(Tok::Name(n)) if n == "mod" => NumOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.union_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn union_expr(&mut self) -> Result<Expr, XPathError> {
        let first = self.path_or_primary()?;
        if self.peek() != Some(&Tok::Pipe) {
            return Ok(first);
        }
        let mut paths = match first {
            Expr::Path(p) => vec![p],
            _ => return Err(self.err("`|` requires location paths")),
        };
        while self.eat(&Tok::Pipe) {
            match self.path_or_primary()? {
                Expr::Path(p) => paths.push(p),
                _ => return Err(self.err("`|` requires location paths")),
            }
        }
        Ok(Expr::Union(paths))
    }

    fn path_or_primary(&mut self) -> Result<Expr, XPathError> {
        match self.peek() {
            Some(Tok::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.peek() {
                    Some(Tok::Number(n)) => {
                        let n = *n;
                        self.pos += 1;
                        Ok(Expr::Number(-n))
                    }
                    _ => Err(self.err("expected number after unary minus")),
                }
            }
            Some(Tok::Literal(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Literal(s))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if self.peek2() == Some(&Tok::LParen) => {
                // Function call — unless it is a node test (text()/node())
                // or an axis-less step like `keyword(...)` which XPath
                // doesn't have; known functions only.
                match n.as_str() {
                    "not" => {
                        self.pos += 2;
                        let e = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Not(Box::new(e)))
                    }
                    "count" => {
                        self.pos += 2;
                        let e = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Count(Box::new(e)))
                    }
                    "position" => {
                        self.pos += 2;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Position)
                    }
                    "last" => {
                        self.pos += 2;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Last)
                    }
                    "contains" => {
                        self.pos += 2;
                        let a = self.expr()?;
                        self.expect(Tok::Comma)?;
                        let b = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Contains(Box::new(a), Box::new(b)))
                    }
                    "starts-with" => {
                        self.pos += 2;
                        let a = self.expr()?;
                        self.expect(Tok::Comma)?;
                        let b = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::StartsWith(Box::new(a), Box::new(b)))
                    }
                    "string-length" => {
                        self.pos += 2;
                        let a = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::StringLength(Box::new(a)))
                    }
                    "normalize-space" => {
                        self.pos += 2;
                        let a = self.expr()?;
                        self.expect(Tok::RParen)?;
                        Ok(Expr::NormalizeSpace(Box::new(a)))
                    }
                    "text" | "node" => self.path(),
                    other => Err(self.err(format!("unknown function `{other}()`"))),
                }
            }
            _ => self.path(),
        }
    }

    fn path(&mut self) -> Result<Expr, XPathError> {
        let mut steps = Vec::new();
        let absolute = matches!(self.peek(), Some(Tok::Slash) | Some(Tok::DSlash));
        if self.eat(&Tok::Slash) {
            // Absolute path; bare `/` selects the root itself.
            if !self.starts_step() {
                return Ok(Expr::Path(LocationPath {
                    absolute: true,
                    steps,
                }));
            }
        } else if self.eat(&Tok::DSlash) {
            steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
        }
        loop {
            steps.push(self.step()?);
            if self.eat(&Tok::Slash) {
                continue;
            }
            if self.eat(&Tok::DSlash) {
                steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
                continue;
            }
            break;
        }
        Ok(Expr::Path(LocationPath { absolute, steps }))
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Name(_)) | Some(Tok::Star) | Some(Tok::At) | Some(Tok::Dot) | Some(Tok::DDot)
        )
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        let mut step = match self.peek().cloned() {
            Some(Tok::Dot) => {
                self.pos += 1;
                Step::new(Axis::SelfAxis, NodeTest::AnyNode)
            }
            Some(Tok::DDot) => {
                self.pos += 1;
                Step::new(Axis::Parent, NodeTest::AnyNode)
            }
            Some(Tok::At) => {
                self.pos += 1;
                let test = self.node_test()?;
                Step::new(Axis::Attribute, test)
            }
            Some(Tok::Name(n)) if self.peek2() == Some(&Tok::DColon) => {
                let axis =
                    Axis::from_name(&n).ok_or_else(|| self.err(format!("unknown axis `{n}`")))?;
                self.pos += 2;
                let test = self.node_test()?;
                Step::new(axis, test)
            }
            _ => {
                let test = self.node_test()?;
                Step::new(Axis::Child, test)
            }
        };
        while self.eat(&Tok::LBracket) {
            let e = self.expr()?;
            // A bare number predicate [N] abbreviates [position() = N].
            let pred = match e {
                Expr::Number(n) => Expr::Compare {
                    op: CompOp::Eq,
                    lhs: Box::new(Expr::Position),
                    rhs: Box::new(Expr::Number(n)),
                },
                other => other,
            };
            step.predicates.push(pred);
            self.expect(Tok::RBracket)?;
        }
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        match self.peek().cloned() {
            Some(Tok::Star) => {
                self.pos += 1;
                Ok(NodeTest::Wildcard)
            }
            Some(Tok::Name(n)) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LParen) {
                    match n.as_str() {
                        "text" => {
                            self.pos += 1;
                            self.expect(Tok::RParen)?;
                            Ok(NodeTest::Text)
                        }
                        "node" => {
                            self.pos += 1;
                            self.expect(Tok::RParen)?;
                            Ok(NodeTest::AnyNode)
                        }
                        other => Err(self.err(format!("unknown node test `{other}()`"))),
                    }
                } else {
                    Ok(NodeTest::Name(n))
                }
            }
            other => Err(self.err(format!("expected node test, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(input: &str) -> LocationPath {
        match parse_xpath(input).expect("parse") {
            Expr::Path(p) => p,
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_absolute_path() {
        let p = path("/site/regions/*/item");
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[2].test, NodeTest::Wildcard);
        assert_eq!(p.steps[3].axis, Axis::Child);
    }

    #[test]
    fn double_slash_desugars() {
        let p = path("//keyword");
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::AnyNode);
        let p2 = path("/a//b");
        assert_eq!(p2.steps.len(), 3);
    }

    #[test]
    fn explicit_axes() {
        let p = path("/descendant-or-self::listitem/descendant-or-self::keyword");
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::Name("listitem".into()));
        let p2 = path("//keyword/ancestor::listitem");
        assert_eq!(p2.steps[2].axis, Axis::Ancestor);
    }

    #[test]
    fn attribute_predicates() {
        let p = path("//item[@featured='yes']");
        let pred = &p.steps[1].predicates[0];
        match pred {
            Expr::Compare {
                op: CompOp::Eq,
                lhs,
                rhs,
            } => {
                match lhs.as_ref() {
                    Expr::Path(ap) => {
                        assert_eq!(ap.steps[0].axis, Axis::Attribute);
                        assert_eq!(ap.steps[0].test, NodeTest::Name("featured".into()));
                    }
                    other => panic!("unexpected lhs {other:?}"),
                }
                assert_eq!(rhs.as_ref(), &Expr::Literal("yes".into()));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn logical_predicates() {
        let p = path("/site/people/person[address and (phone or homepage)]");
        match &p.steps[2].predicates[0] {
            Expr::And(xs) => {
                assert_eq!(xs.len(), 2);
                assert!(matches!(&xs[1], Expr::Or(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p2 = path("/site/people/person[not(homepage)]");
        assert!(matches!(&p2.steps[2].predicates[0], Expr::Not(_)));
    }

    #[test]
    fn join_predicate_with_absolute_path() {
        // QD5 shape.
        let p = path("/dblp/inproceedings[author=/dblp/book/author]/title");
        match &p.steps[1].predicates[0] {
            Expr::Compare { lhs, rhs, .. } => {
                assert!(matches!(lhs.as_ref(), Expr::Path(lp) if !lp.absolute));
                assert!(matches!(rhs.as_ref(), Expr::Path(rp) if rp.absolute));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_expression() {
        match parse_xpath("/site/regions/namerica/item | /site/regions/samerica/item")
            .expect("parse")
        {
            Expr::Union(ps) => assert_eq!(ps.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn numeric_and_position_predicates() {
        let p = path("/a/b[2]");
        match &p.steps[1].predicates[0] {
            Expr::Compare { lhs, rhs, .. } => {
                assert_eq!(lhs.as_ref(), &Expr::Position);
                assert_eq!(rhs.as_ref(), &Expr::Number(2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p2 = path("/a/b[position() = last()]");
        assert_eq!(p2.steps[1].predicates.len(), 1);
    }

    #[test]
    fn text_step_and_comparison() {
        let p = path("/a/b/text()");
        assert_eq!(p.steps[2].test, NodeTest::Text);
        let p2 = path("/a/b[c/text() = 'x']");
        assert_eq!(p2.steps.len(), 2);
    }

    #[test]
    fn arithmetic_in_predicates() {
        let p = path("/a/b[c + 1 = 5]");
        match &p.steps[1].predicates[0] {
            Expr::Compare { lhs, .. } => assert!(matches!(lhs.as_ref(), Expr::Arith { .. })),
            other => panic!("unexpected {other:?}"),
        }
        let p2 = path("/a/b[position() mod 2 = 1]");
        assert_eq!(p2.steps[1].predicates.len(), 1);
    }

    #[test]
    fn names_with_dashes_and_underscores() {
        let p = path("/site/open_auctions/open_auction/bidder/preceding-sibling::bidder");
        assert_eq!(p.steps[4].axis, Axis::PrecedingSibling);
        let p2 = path("//closed_auction[annotation-note]");
        assert_eq!(p2.steps.len(), 2);
    }

    #[test]
    fn dot_and_dotdot() {
        let p = path("./a/../b");
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[2].axis, Axis::Parent);
        assert!(!p.absolute);
    }

    #[test]
    fn bare_root() {
        let p = path("/");
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn errors() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("/a[").is_err());
        assert!(parse_xpath("/a]").is_err());
        assert!(parse_xpath("/a/unknown::b").is_err());
        assert!(parse_xpath("foo(1)").is_err());
        assert!(parse_xpath("/a | 3").is_err());
        assert!(parse_xpath("'unterminated").is_err());
        assert!(parse_xpath("a:b").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for q in [
            "/site/regions/*/item",
            "//keyword",
            "/a//b[c = 'x']",
            "//i[parent::*/parent::sub/ancestor::article]",
            "/a/b[2]",
        ] {
            let e = parse_xpath(q).expect("parse");
            let shown = e.to_string();
            let e2 = parse_xpath(&shown).expect("reparse");
            assert_eq!(e2.to_string(), shown, "stable display for {q}");
        }
    }
}
