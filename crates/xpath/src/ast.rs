//! XPath abstract syntax tree.
//!
//! Covers the XPath subset of the paper (§1: "all XPath axes, path union,
//! nested expressions, and logical, arithmetic and position predicates"):
//! location paths over all 12 axes, name/wildcard/text()/node() node
//! tests, predicates with nested paths, comparisons, `and`/`or`,
//! `not()`/`count()`/`position()`/`last()`/`contains()`, numeric position
//! predicates, arithmetic, and top-level union.

use std::fmt;

/// The thirteen XPath axes we support (namespace axis excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    Following,
    Preceding,
    FollowingSibling,
    PrecedingSibling,
    Attribute,
}

impl Axis {
    /// Forward axes select nodes after (or below) the context node in
    /// document order; backward (reverse) axes select before/above.
    pub fn is_forward(self) -> bool {
        !self.is_reverse()
    }

    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The axis name as written in XPath.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
        }
    }

    pub fn from_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }
}

/// The node test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test (element name, or attribute name on the attribute axis).
    Name(String),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    AnyNode,
}

/// One location step: `axis::test[pred]...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

impl Step {
    pub fn new(axis: Axis, test: NodeTest) -> Step {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// Absolute paths start at the document root (`/…`).
    pub absolute: bool,
    pub steps: Vec<Step>,
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators (`*` is not an arithmetic token in our subset to
/// avoid ambiguity with the wildcard; XPath's `div`/`mod` are supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumOp {
    Add,
    Sub,
    Div,
    Mod,
}

/// An XPath expression (used both for whole queries and inside
/// predicates).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A location path (absolute or relative).
    Path(LocationPath),
    /// Union of paths: `p1 | p2`.
    Union(Vec<LocationPath>),
    Number(f64),
    Literal(String),
    Compare {
        op: CompOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    /// `not(expr)`
    Not(Box<Expr>),
    /// `count(path)`
    Count(Box<Expr>),
    /// `position()`
    Position,
    /// `last()`
    Last,
    /// `contains(a, b)`
    Contains(Box<Expr>, Box<Expr>),
    /// `starts-with(a, b)`
    StartsWith(Box<Expr>, Box<Expr>),
    /// `string-length(a)`
    StringLength(Box<Expr>),
    /// `normalize-space(a)`
    NormalizeSpace(Box<Expr>),
    Arith {
        op: NumOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::AnyNode => write!(f, "node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test) {
            (Axis::Child, t) => write!(f, "{t}")?,
            (Axis::Attribute, t) => write!(f, "@{t}")?,
            (axis, t) => write!(f, "{}::{t}", axis.name())?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Union(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Literal(s) => write!(f, "'{s}'"),
            Expr::Compare { op, lhs, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Expr::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    let needs_parens = matches!(x, Expr::Or(_));
                    if needs_parens {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Expr::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Expr::Not(x) => write!(f, "not({x})"),
            Expr::Count(x) => write!(f, "count({x})"),
            Expr::Position => write!(f, "position()"),
            Expr::Last => write!(f, "last()"),
            Expr::Contains(a, b) => write!(f, "contains({a}, {b})"),
            Expr::StartsWith(a, b) => write!(f, "starts-with({a}, {b})"),
            Expr::StringLength(a) => write!(f, "string-length({a})"),
            Expr::NormalizeSpace(a) => write!(f, "normalize-space({a})"),
            Expr::Arith { op, lhs, rhs } => {
                let sym = match op {
                    NumOp::Add => "+",
                    NumOp::Sub => "-",
                    NumOp::Div => "div",
                    NumOp::Mod => "mod",
                };
                write!(f, "{lhs} {sym} {rhs}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_direction() {
        assert!(Axis::Child.is_forward());
        assert!(Axis::Following.is_forward());
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(Axis::Attribute.is_forward());
    }

    #[test]
    fn axis_name_roundtrip() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::SelfAxis,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Following,
            Axis::Preceding,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Attribute,
        ] {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("namespace"), None);
    }

    #[test]
    fn display_forms() {
        let p = LocationPath {
            absolute: true,
            steps: vec![
                Step::new(Axis::Child, NodeTest::Name("a".into())),
                Step::new(Axis::Descendant, NodeTest::Wildcard),
                Step::new(Axis::Attribute, NodeTest::Name("id".into())),
            ],
        };
        assert_eq!(p.to_string(), "/a/descendant::*/@id");
    }
}
