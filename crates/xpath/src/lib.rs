//! `xpath` — XPath 1.0-subset parser and native in-memory evaluator.
//!
//! The subset matches the paper's (§1): all axes, wildcards, `//`,
//! path union, nested path predicates, logical / arithmetic / position
//! predicates, and value or path-to-path comparisons (join predicates).
//!
//! The evaluator runs directly on `xmldom` trees. It is the correctness
//! oracle for the SQL-based systems and the main-memory competitor
//! (MonetDB/XQuery stand-in) in the benchmark harness.
//!
//! # Example
//! ```
//! use xpath::{parse_xpath, evaluate};
//! let doc = xmldom::parse("<a><b x='1'><c/></b><b x='2'/></a>").unwrap();
//! let q = parse_xpath("/a/b[@x='2']").unwrap();
//! let hits = evaluate(&doc, &q).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod staircase;

pub use ast::{Axis, CompOp, Expr, LocationPath, NodeTest, NumOp, Step};
pub use eval::{evaluate, string_value, EvalError, Item};
pub use parser::{parse_path, parse_xpath, XPathError};
