//! Native in-memory XPath evaluator.
//!
//! Evaluates directly on the `xmldom` tree. It serves two roles in the
//! reproduction: (a) the **correctness oracle** every SQL-based system is
//! checked against, and (b) the stand-in for **MonetDB/XQuery** in the
//! experiments — a main-memory evaluator with no SQL translation overhead
//! (see DESIGN.md, substitution 2).
//!
//! Semantics follow XPath 1.0: node-set comparisons are existential,
//! predicates see context position/size in axis order (reverse axes count
//! backwards), and element string-values concatenate descendant text.

use std::collections::BTreeSet;

use xmldom::{Document, NodeId};

use crate::ast::{Axis, CompOp, Expr, LocationPath, NodeTest, NumOp, Step};

/// An item in an XPath node-set: a tree node or an attribute of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Item {
    Node(NodeId),
    /// Attribute `index` of element `NodeId` (document order: owner, then
    /// attribute position).
    Attr(NodeId, usize),
}

impl Item {
    pub fn node_id(self) -> NodeId {
        match self {
            Item::Node(n) | Item::Attr(n, _) => n,
        }
    }
}

/// Evaluation error (e.g. a query feature outside the subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XPath evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// A computed value during predicate evaluation.
#[derive(Debug, Clone)]
enum PValue {
    Nodes(Vec<Item>),
    Num(f64),
    Str(String),
    Bool(bool),
}

/// Evaluate a full XPath expression against a document. Returns the
/// result node-set in document order (top-level expressions must be
/// paths/unions; use predicates for value-typed expressions).
pub fn evaluate(doc: &Document, expr: &Expr) -> Result<Vec<Item>, EvalError> {
    match expr {
        Expr::Path(p) => {
            let ctx = vec![Item::Node(Document::ROOT)];
            let out = eval_path(doc, p, &ctx)?;
            Ok(sorted_unique(out))
        }
        Expr::Union(paths) => {
            let ctx = vec![Item::Node(Document::ROOT)];
            let mut all = Vec::new();
            for p in paths {
                all.extend(eval_path(doc, p, &ctx)?);
            }
            Ok(sorted_unique(all))
        }
        other => Err(EvalError(format!(
            "top-level expression must be a path, got `{other}`"
        ))),
    }
}

/// String-value of an item (XPath 1.0 §5).
pub fn string_value(doc: &Document, item: Item) -> String {
    match item {
        Item::Node(n) => doc.string_value(n),
        Item::Attr(n, i) => doc.attributes(n)[i].1.clone(),
    }
}

fn sorted_unique(mut items: Vec<Item>) -> Vec<Item> {
    items.sort();
    items.dedup();
    items
}

/// Evaluate a location path from a set of context items.
fn eval_path(
    doc: &Document,
    path: &LocationPath,
    context: &[Item],
) -> Result<Vec<Item>, EvalError> {
    let mut current: Vec<Item> = if path.absolute {
        vec![Item::Node(Document::ROOT)]
    } else {
        context.to_vec()
    };
    for step in &path.steps {
        // Staircase fast path (§6/§7 future work; what MonetDB does): a
        // predicate-free descendant/ancestor step over an all-element
        // context is answered with one pruned scan instead of per-node
        // traversals + dedup.
        if step.predicates.is_empty() && current.iter().all(|i| matches!(i, Item::Node(_))) {
            let nodes: Vec<NodeId> = current
                .iter()
                .map(|i| match i {
                    Item::Node(n) => *n,
                    Item::Attr(..) => unreachable!("checked above"),
                })
                .collect();
            let fast = match step.axis {
                Axis::Descendant => Some(crate::staircase::staircase_descendant(
                    doc, &nodes, &step.test, false,
                )),
                Axis::DescendantOrSelf => Some(crate::staircase::staircase_descendant(
                    doc, &nodes, &step.test, true,
                )),
                Axis::Ancestor => Some(crate::staircase::staircase_ancestor(
                    doc, &nodes, &step.test, false,
                )),
                Axis::AncestorOrSelf => Some(crate::staircase::staircase_ancestor(
                    doc, &nodes, &step.test, true,
                )),
                _ => None,
            };
            if let Some(nodes) = fast {
                current = nodes.into_iter().map(Item::Node).collect();
                continue;
            }
        }
        let mut next: Vec<Item> = Vec::new();
        for &item in &current {
            let axis_nodes = axis_items(doc, item, step)?;
            // Predicates filter with position counted in axis order.
            let mut selected = axis_nodes;
            for pred in &step.predicates {
                let size = selected.len();
                let mut filtered = Vec::with_capacity(size);
                for (i, &cand) in selected.iter().enumerate() {
                    let truth = predicate_truth(doc, pred, cand, i + 1, size)?;
                    if truth {
                        filtered.push(cand);
                    }
                }
                selected = filtered;
            }
            next.extend(selected);
        }
        current = sorted_unique(next);
    }
    Ok(current)
}

/// Items selected by one step's axis+test from one context item, in axis
/// order (reverse axes yield reverse document order).
fn axis_items(doc: &Document, item: Item, step: &Step) -> Result<Vec<Item>, EvalError> {
    let node = match item {
        Item::Node(n) => n,
        Item::Attr(owner, _) => {
            // Only parent/ancestor make sense from an attribute.
            return match step.axis {
                Axis::Parent => Ok(filter_test(doc, vec![owner], &step.test)),
                Axis::Ancestor | Axis::AncestorOrSelf => {
                    let mut out = ancestors(doc, owner);
                    if step.axis == Axis::AncestorOrSelf {
                        out.insert(0, owner);
                    }
                    Ok(filter_test(doc, out, &step.test))
                }
                Axis::SelfAxis => Ok(Vec::new()),
                _ => Ok(Vec::new()),
            };
        }
    };

    let out: Vec<Item> = match step.axis {
        Axis::Attribute => {
            let attrs = doc.attributes(node);
            let mut out = Vec::new();
            for (i, (name, _)) in attrs.iter().enumerate() {
                let keep = match &step.test {
                    NodeTest::Name(n) => n == name,
                    NodeTest::Wildcard | NodeTest::AnyNode => true,
                    NodeTest::Text => false,
                };
                if keep {
                    out.push(Item::Attr(node, i));
                }
            }
            return Ok(out);
        }
        Axis::Child => filter_test(doc, doc.children(node).to_vec(), &step.test),
        Axis::Descendant => filter_test(doc, descendants(doc, node), &step.test),
        Axis::DescendantOrSelf => {
            let mut v = vec![node];
            v.extend(descendants(doc, node));
            filter_test(doc, v, &step.test)
        }
        Axis::SelfAxis => filter_test(doc, vec![node], &step.test),
        Axis::Parent => match doc.parent(node) {
            Some(p) => filter_test(doc, vec![p], &step.test),
            None => Vec::new(),
        },
        Axis::Ancestor => filter_test(doc, ancestors(doc, node), &step.test),
        Axis::AncestorOrSelf => {
            let mut v = vec![node];
            v.extend(ancestors(doc, node));
            filter_test(doc, v, &step.test)
        }
        Axis::FollowingSibling => match doc.parent(node) {
            Some(p) => {
                let sibs = doc.children(p);
                let pos = sibs
                    .iter()
                    .position(|&s| s == node)
                    .expect("child of parent");
                filter_test(doc, sibs[pos + 1..].to_vec(), &step.test)
            }
            None => Vec::new(),
        },
        Axis::PrecedingSibling => match doc.parent(node) {
            Some(p) => {
                let sibs = doc.children(p);
                let pos = sibs
                    .iter()
                    .position(|&s| s == node)
                    .expect("child of parent");
                let mut v: Vec<NodeId> = sibs[..pos].to_vec();
                v.reverse(); // axis order: nearest sibling first
                filter_test(doc, v, &step.test)
            }
            None => Vec::new(),
        },
        Axis::Following => {
            // Document order after `node`, excluding descendants.
            let mut v = Vec::new();
            let my_last = last_descendant_id(doc, node);
            for cand in doc.all_nodes() {
                if cand > my_last {
                    v.push(cand);
                }
            }
            filter_test(doc, v, &step.test)
        }
        Axis::Preceding => {
            // Before `node` in document order, excluding ancestors.
            let anc: BTreeSet<NodeId> = ancestors(doc, node).into_iter().collect();
            let mut v = Vec::new();
            for cand in doc.all_nodes() {
                if cand >= node {
                    break;
                }
                if !anc.contains(&cand) && cand != Document::ROOT {
                    v.push(cand);
                }
            }
            v.reverse(); // axis order: nearest first
            filter_test(doc, v, &step.test)
        }
    };
    Ok(out)
}

fn filter_test(doc: &Document, nodes: Vec<NodeId>, test: &NodeTest) -> Vec<Item> {
    nodes
        .into_iter()
        .filter(|&n| match test {
            NodeTest::Name(name) => doc.name(n) == Some(name.as_str()),
            NodeTest::Wildcard => doc.is_element(n),
            NodeTest::Text => doc.is_text(n),
            // The virtual document root is an XPath node too (`/`), so
            // node() keeps it — required for the `//x` desugaring to find
            // the document element.
            NodeTest::AnyNode => true,
        })
        .map(Item::Node)
        .collect()
}

/// All descendants (elements and text) in document order.
fn descendants(doc: &Document, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = doc.children(node).iter().rev().copied().collect();
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(doc.children(n).iter().rev().copied());
    }
    out
}

/// Proper ancestors, nearest first (axis order), excluding the virtual
/// document root only when it is the tree root marker? No — the document
/// root *is* an XPath node (`/`), so it is included.
fn ancestors(doc: &Document, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut cur = doc.parent(node);
    while let Some(n) = cur {
        out.push(n);
        cur = doc.parent(n);
    }
    out
}

/// Largest node id within the subtree of `node` (node itself if leaf).
/// Valid because ids are assigned in preorder.
fn last_descendant_id(doc: &Document, node: NodeId) -> NodeId {
    let mut last = node;
    let mut cur = node;
    while let Some(&c) = doc.children(cur).last() {
        last = c;
        cur = c;
    }
    last
}

/// Evaluate a predicate expression to a boolean, with context.
fn predicate_truth(
    doc: &Document,
    pred: &Expr,
    ctx: Item,
    position: usize,
    size: usize,
) -> Result<bool, EvalError> {
    let v = eval_expr(doc, pred, ctx, position, size)?;
    Ok(truth(doc, &v))
}

fn truth(_doc: &Document, v: &PValue) -> bool {
    match v {
        PValue::Nodes(ns) => !ns.is_empty(),
        PValue::Num(n) => *n != 0.0 && !n.is_nan(),
        PValue::Str(s) => !s.is_empty(),
        PValue::Bool(b) => *b,
    }
}

fn eval_expr(
    doc: &Document,
    e: &Expr,
    ctx: Item,
    position: usize,
    size: usize,
) -> Result<PValue, EvalError> {
    match e {
        Expr::Path(p) => {
            let out = eval_path(doc, p, &[ctx])?;
            Ok(PValue::Nodes(out))
        }
        Expr::Union(ps) => {
            let mut all = Vec::new();
            for p in ps {
                all.extend(eval_path(doc, p, &[ctx])?);
            }
            Ok(PValue::Nodes(sorted_unique(all)))
        }
        Expr::Number(n) => Ok(PValue::Num(*n)),
        Expr::Literal(s) => Ok(PValue::Str(s.clone())),
        Expr::Position => Ok(PValue::Num(position as f64)),
        Expr::Last => Ok(PValue::Num(size as f64)),
        Expr::Count(inner) => {
            let v = eval_expr(doc, inner, ctx, position, size)?;
            match v {
                PValue::Nodes(ns) => Ok(PValue::Num(ns.len() as f64)),
                _ => Err(EvalError("count() requires a node-set".into())),
            }
        }
        Expr::Not(inner) => {
            let v = eval_expr(doc, inner, ctx, position, size)?;
            Ok(PValue::Bool(!truth(doc, &v)))
        }
        Expr::And(xs) => {
            for x in xs {
                let v = eval_expr(doc, x, ctx, position, size)?;
                if !truth(doc, &v) {
                    return Ok(PValue::Bool(false));
                }
            }
            Ok(PValue::Bool(true))
        }
        Expr::Or(xs) => {
            for x in xs {
                let v = eval_expr(doc, x, ctx, position, size)?;
                if truth(doc, &v) {
                    return Ok(PValue::Bool(true));
                }
            }
            Ok(PValue::Bool(false))
        }
        Expr::Contains(a, b) => {
            let av = eval_expr(doc, a, ctx, position, size)?;
            let bv = eval_expr(doc, b, ctx, position, size)?;
            let asv = to_string_value(doc, &av);
            let bsv = to_string_value(doc, &bv);
            Ok(PValue::Bool(asv.contains(&bsv)))
        }
        Expr::StartsWith(a, b) => {
            let av = eval_expr(doc, a, ctx, position, size)?;
            let bv = eval_expr(doc, b, ctx, position, size)?;
            let asv = to_string_value(doc, &av);
            let bsv = to_string_value(doc, &bv);
            Ok(PValue::Bool(asv.starts_with(&bsv)))
        }
        Expr::StringLength(a) => {
            let av = eval_expr(doc, a, ctx, position, size)?;
            Ok(PValue::Num(to_string_value(doc, &av).chars().count() as f64))
        }
        Expr::NormalizeSpace(a) => {
            let av = eval_expr(doc, a, ctx, position, size)?;
            let s = to_string_value(doc, &av);
            Ok(PValue::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        Expr::Arith { op, lhs, rhs } => {
            let a = to_number(doc, &eval_expr(doc, lhs, ctx, position, size)?);
            let b = to_number(doc, &eval_expr(doc, rhs, ctx, position, size)?);
            let r = match op {
                NumOp::Add => a + b,
                NumOp::Sub => a - b,
                NumOp::Div => a / b,
                NumOp::Mod => a % b,
            };
            Ok(PValue::Num(r))
        }
        Expr::Compare { op, lhs, rhs } => {
            let a = eval_expr(doc, lhs, ctx, position, size)?;
            let b = eval_expr(doc, rhs, ctx, position, size)?;
            Ok(PValue::Bool(compare(doc, *op, &a, &b)))
        }
    }
}

/// XPath 1.0 comparison: node-sets compare existentially.
fn compare(doc: &Document, op: CompOp, a: &PValue, b: &PValue) -> bool {
    match (a, b) {
        (PValue::Nodes(xs), PValue::Nodes(ys)) => xs.iter().any(|&x| {
            let xs = string_value(doc, x);
            ys.iter()
                .any(|&y| compare_strings(op, &xs, &string_value(doc, y)))
        }),
        (PValue::Nodes(xs), other) => xs
            .iter()
            .any(|&x| compare_atom(op, &string_value(doc, x), other)),
        (other, PValue::Nodes(ys)) => ys
            .iter()
            .any(|&y| compare_atom(flip(op), &string_value(doc, y), other)),
        (a, b) => compare_values(doc, op, a, b),
    }
}

fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Eq => CompOp::Eq,
        CompOp::Ne => CompOp::Ne,
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
    }
}

/// Compare a node's string-value against an atomic value.
fn compare_atom(op: CompOp, node_sv: &str, atom: &PValue) -> bool {
    match atom {
        PValue::Num(n) => match node_sv.trim().parse::<f64>() {
            Ok(x) => compare_numbers(op, x, *n),
            Err(_) => false,
        },
        PValue::Str(s) => compare_strings(op, node_sv, s),
        PValue::Bool(b) => {
            // boolean(node-set non-empty) vs bool — here the node exists.
            compare_bools(op, true, *b)
        }
        PValue::Nodes(_) => unreachable!("handled by caller"),
    }
}

fn compare_values(doc: &Document, op: CompOp, a: &PValue, b: &PValue) -> bool {
    let _ = doc;
    match (a, b) {
        (PValue::Num(x), PValue::Num(y)) => compare_numbers(op, *x, *y),
        (PValue::Num(x), PValue::Str(s)) => match s.trim().parse::<f64>() {
            Ok(y) => compare_numbers(op, *x, y),
            Err(_) => false,
        },
        (PValue::Str(s), PValue::Num(y)) => match s.trim().parse::<f64>() {
            Ok(x) => compare_numbers(op, x, *y),
            Err(_) => false,
        },
        (PValue::Str(x), PValue::Str(y)) => compare_strings(op, x, y),
        (PValue::Bool(x), PValue::Bool(y)) => compare_bools(op, *x, *y),
        (PValue::Bool(x), other) => {
            let y = matches!(other, PValue::Num(n) if *n != 0.0)
                || matches!(other, PValue::Str(s) if !s.is_empty());
            compare_bools(op, *x, y)
        }
        (other, PValue::Bool(y)) => {
            let x = matches!(other, PValue::Num(n) if *n != 0.0)
                || matches!(other, PValue::Str(s) if !s.is_empty());
            compare_bools(op, x, *y)
        }
        _ => false,
    }
}

fn compare_numbers(op: CompOp, a: f64, b: f64) -> bool {
    match op {
        CompOp::Eq => a == b,
        CompOp::Ne => a != b,
        CompOp::Lt => a < b,
        CompOp::Le => a <= b,
        CompOp::Gt => a > b,
        CompOp::Ge => a >= b,
    }
}

/// XPath 1.0: `<`/`>` on strings convert both to numbers; only `=`/`!=`
/// compare string-wise.
fn compare_strings(op: CompOp, a: &str, b: &str) -> bool {
    match op {
        CompOp::Eq => a == b,
        CompOp::Ne => a != b,
        _ => match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            (Ok(x), Ok(y)) => compare_numbers(op, x, y),
            _ => false,
        },
    }
}

fn compare_bools(op: CompOp, a: bool, b: bool) -> bool {
    compare_numbers(op, a as u8 as f64, b as u8 as f64)
}

fn to_number(doc: &Document, v: &PValue) -> f64 {
    match v {
        PValue::Num(n) => *n,
        PValue::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
        PValue::Bool(b) => *b as u8 as f64,
        PValue::Nodes(ns) => match ns.first() {
            Some(&n) => string_value(doc, n).trim().parse().unwrap_or(f64::NAN),
            None => f64::NAN,
        },
    }
}

fn to_string_value(doc: &Document, v: &PValue) -> String {
    match v {
        PValue::Str(s) => s.clone(),
        PValue::Num(n) => {
            if n.fract() == 0.0 && n.is_finite() {
                format!("{}", *n as i64)
            } else {
                n.to_string()
            }
        }
        PValue::Bool(b) => b.to_string(),
        PValue::Nodes(ns) => match ns.first() {
            Some(&n) => string_value(doc, n),
            None => String::new(),
        },
    }
}
