//! A small JSON writer and parser.
//!
//! The obs crate must stay dependency-free, so it carries its own JSON
//! support: [`Writer`] emits compact single-line objects for the sinks,
//! and [`parse`] reads them back — enough for round-trip tests and for
//! tooling that consumes `--trace-json` output. Numbers parse as `f64`
//! (exact for the `u64` counter magnitudes we emit, which stay well
//! below 2⁵³ in practice).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Compact JSON emitter with automatic comma placement.
#[derive(Default)]
pub struct Writer {
    out: String,
    /// Whether the current container already has an element.
    need_comma: Vec<bool>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    fn elem(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.elem();
        self.out.push('{');
        self.need_comma.push(false);
    }

    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.elem();
        self.out.push('[');
        self.need_comma.push(false);
    }

    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Write an object key; the next value call supplies its value.
    pub fn key(&mut self, key: &str) {
        self.elem();
        escape_into(&mut self.out, key);
        self.out.push(':');
        // The value that follows must not emit a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    pub fn string(&mut self, value: &str) {
        self.elem();
        escape_into(&mut self.out, value);
    }

    pub fn number(&mut self, value: u64) {
        self.elem();
        let _ = write!(self.out, "{value}");
    }

    pub fn float(&mut self, value: f64) {
        self.elem();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    pub fn bool(&mut self, value: bool) {
        self.elem();
        self.out.push_str(if value { "true" } else { "false" });
    }

    pub fn null(&mut self) {
        self.elem();
        self.out.push_str("null");
    }

    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are safe to recover).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}
