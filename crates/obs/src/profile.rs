//! A low-overhead, process-wide event profiler for the parallel engine.
//!
//! The scheduler question behind ROADMAP's "make parallelism actually
//! pay" item — where do the milliseconds go when threads rise but
//! throughput falls? — cannot be answered by aggregate counters alone.
//! This module records *events* (task start/end, steal attempt/outcome,
//! park/unpark, chunk execution, lock waits, query boundaries) into
//! per-thread buffers and aggregates them into per-worker timelines
//! with utilization, idle, and steal-latency breakdowns. The raw
//! timeline exports as Chrome `trace_event` JSON loadable in Perfetto
//! or `chrome://tracing`.
//!
//! # Overhead contract
//!
//! Instrumented code calls [`record`] unconditionally. When no profiler
//! is attached the call is **one relaxed atomic load and a branch** —
//! the slow path is `#[cold]` and never taken, no timestamp is read, no
//! thread-local is touched, nothing allocates. `cargo bench obs_micro`
//! (`profile_record_detached`) and the `profile_smoke` bin keep this
//! honest: the detached hook must stay under 2% of query time.
//!
//! # Clock
//!
//! Timestamps are nanoseconds since a process-wide [`Instant`] epoch
//! captured on first use, so events from different threads share one
//! monotonic axis and survive attach/detach cycles without rebasing.
//!
//! # Buffers
//!
//! Each recording thread owns a bounded single-writer buffer
//! ([`CAPACITY`] events). The owner writes a slot and then publishes it
//! with a release store of the head index; the collector (inside
//! [`detach`]) acquire-loads the head and reads only published slots,
//! so the record path takes **no locks** — the only mutex in the module
//! guards one-time thread registration and the attach/detach control
//! path. A full buffer drops further events (counted, reported in the
//! profile) rather than blocking or reallocating. Buffers are reset
//! lazily via a generation counter, so re-attaching never pays for
//! stale data. Events racing a detach may be dropped; that is fine for
//! a profiler.

use std::cell::UnsafeCell;
use std::fmt::Write as _;
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release, SeqCst},
};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::Writer;

/// Events each thread can buffer per attach before dropping.
pub const CAPACITY: usize = 1 << 16;

/// What happened. The `arg` accompanying each event is kind-specific:
/// rows for chunk events, the victim worker index for steal successes,
/// waited nanoseconds for lock waits, result rows for query ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A pool task began executing on this thread.
    TaskStart = 0,
    /// The pool task finished.
    TaskEnd = 1,
    /// A worker started scanning sibling deques for work.
    StealAttempt = 2,
    /// The scan found a task; `arg` = victim worker index.
    StealSuccess = 3,
    /// The scan came up empty.
    StealFail = 4,
    /// The worker parked on its condvar.
    Park = 5,
    /// The worker woke up.
    Unpark = 6,
    /// A partitioned chunk began; `arg` = input rows in the chunk.
    ChunkStart = 7,
    /// The chunk finished; `arg` = rows it produced.
    ChunkEnd = 8,
    /// A contended lock acquisition; `arg` = nanoseconds waited.
    LockWait = 9,
    /// Engine query started on this thread.
    QueryStart = 10,
    /// Engine query finished; `arg` = 1 on success, 0 on error.
    QueryEnd = 11,
}

impl EventKind {
    fn from_u8(raw: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match raw {
            0 => TaskStart,
            1 => TaskEnd,
            2 => StealAttempt,
            3 => StealSuccess,
            4 => StealFail,
            5 => Park,
            6 => Unpark,
            7 => ChunkStart,
            8 => ChunkEnd,
            9 => LockWait,
            10 => QueryStart,
            11 => QueryEnd,
            _ => return None,
        })
    }

    /// Stable lowercase label used in the chrome trace and tables.
    pub fn label(self) -> &'static str {
        use EventKind::*;
        match self {
            TaskStart | TaskEnd => "task",
            StealAttempt | StealSuccess | StealFail => "steal",
            Park | Unpark => "park",
            ChunkStart | ChunkEnd => "chunk",
            LockWait => "lock_wait",
            QueryStart | QueryEnd => "query",
        }
    }
}

/// One recorded event on one thread's timeline.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Nanoseconds since the process-wide profiling epoch.
    pub t_ns: u64,
    pub kind: EventKind,
    pub arg: u64,
}

#[derive(Clone, Copy)]
struct RawEvent {
    t_ns: u64,
    arg: u64,
    kind: u8,
}

const EMPTY_RAW: RawEvent = RawEvent {
    t_ns: 0,
    arg: 0,
    kind: u8::MAX,
};

/// Per-thread event buffer. Single-writer: only the owning thread
/// stores slots and advances `head`; the collector reads slots strictly
/// below an acquire-loaded `head`, and slots are never rewritten within
/// a generation (the buffer is bounded, not circular).
struct ThreadBuf {
    name: String,
    generation: AtomicU64,
    head: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<RawEvent>]>,
}

// SAFETY: cross-thread access to `slots` follows the single-writer
// protocol documented on the struct; `head` release/acquire ordering
// publishes every slot the collector is allowed to read.
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new(name: String) -> ThreadBuf {
        ThreadBuf {
            name,
            generation: AtomicU64::new(0),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..CAPACITY)
                .map(|_| UnsafeCell::new(EMPTY_RAW))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Owner-thread-only append.
    fn push(&self, gen: u64, t_ns: u64, kind: EventKind, arg: u64) {
        if self.generation.load(Relaxed) != gen {
            // First event of a new attach: retire the stale contents.
            // Head must be zeroed before the generation becomes visible
            // or a collector could read old slots as new events.
            self.head.store(0, Release);
            self.dropped.store(0, Relaxed);
            self.generation.store(gen, Release);
        }
        let h = self.head.load(Relaxed);
        if h >= self.slots.len() {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        // SAFETY: only the owning thread writes slots, and slot `h` is
        // unpublished until the release store below.
        unsafe {
            *self.slots[h].get() = RawEvent {
                t_ns,
                arg,
                kind: kind as u8,
            };
        }
        self.head.store(h + 1, Release);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static THREADS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

fn control() -> MutexGuard<'static, Vec<Arc<ThreadBuf>>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide monotonic epoch all timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        let cur = std::thread::current();
        let name = cur
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{:?}", cur.id()));
        let buf = Arc::new(ThreadBuf::new(name));
        control().push(buf.clone());
        buf
    };
}

/// Is a profiler currently attached? Callers with *expensive* argument
/// computation (e.g. timing a lock acquisition) gate on this; plain
/// [`record`] calls need no guard.
#[inline]
pub fn is_attached() -> bool {
    ENABLED.load(Relaxed)
}

/// Record an event on the current thread's timeline. Detached cost: one
/// relaxed atomic load and an untaken branch.
#[inline]
pub fn record(kind: EventKind, arg: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    record_slow(kind, arg);
}

#[cold]
#[inline(never)]
fn record_slow(kind: EventKind, arg: u64) {
    let t_ns = epoch().elapsed().as_nanos() as u64;
    let gen = GENERATION.load(Acquire);
    // `try_with` so a record during thread teardown is a no-op instead
    // of a panic.
    let _ = LOCAL.try_with(|buf| buf.push(gen, t_ns, kind, arg));
}

/// Attach the profiler. Returns `false` (and changes nothing) if one is
/// already attached — the profiler is a process-wide singleton.
pub fn attach() -> bool {
    let _guard = control();
    if ENABLED.load(SeqCst) {
        return false;
    }
    // New generation first so no event can land in the old one once
    // recording is enabled.
    GENERATION.fetch_add(1, SeqCst);
    ENABLED.store(true, SeqCst);
    true
}

/// Detach the profiler and collect everything recorded since
/// [`attach`]. Returns `None` if no profiler was attached.
pub fn detach() -> Option<Profile> {
    let mut guard = control();
    if !ENABLED.swap(false, SeqCst) {
        return None;
    }
    let gen = GENERATION.load(SeqCst);
    let mut lanes = Vec::new();
    let mut dropped = 0u64;
    for buf in guard.iter() {
        if buf.generation.load(Acquire) != gen {
            continue; // never recorded in this generation
        }
        let head = buf.head.load(Acquire).min(buf.slots.len());
        let mut events = Vec::with_capacity(head);
        for slot in &buf.slots[..head] {
            // SAFETY: slots below the acquired head are published and
            // never rewritten within this generation.
            let raw = unsafe { *slot.get() };
            if let Some(kind) = EventKind::from_u8(raw.kind) {
                events.push(Event {
                    t_ns: raw.t_ns,
                    kind,
                    arg: raw.arg,
                });
            }
        }
        dropped += buf.dropped.load(Relaxed);
        if !events.is_empty() {
            lanes.push(Lane {
                name: buf.name.clone(),
                events,
            });
        }
    }
    // Prune buffers whose owning thread has exited (the thread-local
    // Arc is gone) so long-lived processes don't accumulate dead lanes.
    guard.retain(|buf| Arc::strong_count(buf) > 1);
    lanes.sort_by(|a, b| a.name.cmp(&b.name));
    Some(Profile { lanes, dropped })
}

/// One thread's recorded events, in recording order.
#[derive(Debug)]
pub struct Lane {
    pub name: String,
    pub events: Vec<Event>,
}

/// Everything one attach/detach cycle captured.
#[derive(Debug)]
pub struct Profile {
    /// Per-thread timelines, sorted by thread name.
    pub lanes: Vec<Lane>,
    /// Events lost to full buffers across all threads.
    pub dropped: u64,
}

/// Aggregated per-worker statistics derived from a [`Lane`].
#[derive(Debug, Clone, Default)]
pub struct WorkerTimeline {
    pub name: String,
    pub first_ns: u64,
    pub last_ns: u64,
    /// Union of task + chunk execution spans (overlaps not double
    /// counted). Query spans are excluded: on the coordinator they
    /// cover scheduler wait, which is precisely the idleness we want
    /// utilization to expose.
    pub busy_ns: u64,
    pub park_ns: u64,
    pub tasks: u64,
    pub chunks: u64,
    pub chunk_rows: u64,
    pub chunk_rows_max: u64,
    pub steal_attempts: u64,
    pub steal_successes: u64,
    pub steal_fails: u64,
    /// Total attempt→outcome latency across all steal scans.
    pub steal_wait_ns: u64,
    pub lock_waits: u64,
    pub lock_wait_ns: u64,
    pub queries: u64,
    pub events: u64,
}

impl WorkerTimeline {
    /// Fraction of `window_ns` this worker spent executing tasks or
    /// chunks.
    pub fn utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / window_ns as f64
        }
    }

    /// Steal scans that found work, over all scans. 0.0 when no scans.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steal_successes as f64 / self.steal_attempts as f64
        }
    }
}

/// A start/end pair resolved from the event stream.
struct Span {
    start: u64,
    end: u64,
    kind: EventKind,
    arg_start: u64,
    arg_end: u64,
}

/// Pair Start/End style events within one lane. Unclosed spans are
/// closed at `close_at` (the profile's end) so a detach mid-task still
/// shows the partial span.
fn resolve_spans(events: &[Event], close_at: u64) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut tasks: Vec<u64> = Vec::new();
    let mut chunks: Vec<(u64, u64)> = Vec::new();
    let mut queries: Vec<u64> = Vec::new();
    let mut park: Option<u64> = None;
    let mut steal: Option<u64> = None;
    for ev in events {
        use EventKind::*;
        match ev.kind {
            TaskStart => tasks.push(ev.t_ns),
            TaskEnd => {
                if let Some(start) = tasks.pop() {
                    spans.push(Span {
                        start,
                        end: ev.t_ns,
                        kind: TaskStart,
                        arg_start: 0,
                        arg_end: 0,
                    });
                }
            }
            ChunkStart => chunks.push((ev.t_ns, ev.arg)),
            ChunkEnd => {
                if let Some((start, rows_in)) = chunks.pop() {
                    spans.push(Span {
                        start,
                        end: ev.t_ns,
                        kind: ChunkStart,
                        arg_start: rows_in,
                        arg_end: ev.arg,
                    });
                }
            }
            QueryStart => queries.push(ev.t_ns),
            QueryEnd => {
                if let Some(start) = queries.pop() {
                    spans.push(Span {
                        start,
                        end: ev.t_ns,
                        kind: QueryStart,
                        arg_start: 0,
                        arg_end: ev.arg,
                    });
                }
            }
            Park => park = Some(ev.t_ns),
            Unpark => {
                if let Some(start) = park.take() {
                    spans.push(Span {
                        start,
                        end: ev.t_ns,
                        kind: Park,
                        arg_start: 0,
                        arg_end: 0,
                    });
                }
            }
            StealAttempt => steal = Some(ev.t_ns),
            StealSuccess | StealFail => {
                if let Some(start) = steal.take() {
                    spans.push(Span {
                        start,
                        end: ev.t_ns,
                        kind: ev.kind,
                        arg_start: 0,
                        arg_end: ev.arg,
                    });
                }
            }
            LockWait => spans.push(Span {
                start: ev.t_ns.saturating_sub(ev.arg),
                end: ev.t_ns,
                kind: LockWait,
                arg_start: ev.arg,
                arg_end: ev.arg,
            }),
        }
    }
    for start in tasks {
        spans.push(Span {
            start,
            end: close_at.max(start),
            kind: EventKind::TaskStart,
            arg_start: 0,
            arg_end: 0,
        });
    }
    for (start, rows) in chunks {
        spans.push(Span {
            start,
            end: close_at.max(start),
            kind: EventKind::ChunkStart,
            arg_start: rows,
            arg_end: 0,
        });
    }
    for start in queries {
        spans.push(Span {
            start,
            end: close_at.max(start),
            kind: EventKind::QueryStart,
            arg_start: 0,
            arg_end: 0,
        });
    }
    spans
}

/// Union length of a set of intervals, overlaps counted once.
fn union_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

impl Profile {
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// First event timestamp across all lanes.
    pub fn start_ns(&self) -> u64 {
        self.lanes
            .iter()
            .filter_map(|l| l.events.first().map(|e| e.t_ns))
            .min()
            .unwrap_or(0)
    }

    /// Last event timestamp across all lanes.
    pub fn end_ns(&self) -> u64 {
        self.lanes
            .iter()
            .flat_map(|l| l.events.last().map(|e| e.t_ns))
            .max()
            .unwrap_or(0)
    }

    /// The observed wall-clock window: last event minus first event.
    pub fn window_ns(&self) -> u64 {
        self.end_ns().saturating_sub(self.start_ns())
    }

    /// Aggregate each lane into a [`WorkerTimeline`].
    pub fn timelines(&self) -> Vec<WorkerTimeline> {
        let close_at = self.end_ns();
        self.lanes
            .iter()
            .map(|lane| {
                let mut t = WorkerTimeline {
                    name: lane.name.clone(),
                    first_ns: lane.events.first().map_or(0, |e| e.t_ns),
                    last_ns: lane.events.last().map_or(0, |e| e.t_ns),
                    events: lane.events.len() as u64,
                    ..WorkerTimeline::default()
                };
                use EventKind::*;
                for ev in &lane.events {
                    match ev.kind {
                        TaskStart => t.tasks += 1,
                        ChunkStart => {
                            t.chunks += 1;
                            t.chunk_rows += ev.arg;
                            t.chunk_rows_max = t.chunk_rows_max.max(ev.arg);
                        }
                        QueryStart => t.queries += 1,
                        StealAttempt => t.steal_attempts += 1,
                        StealSuccess => t.steal_successes += 1,
                        StealFail => t.steal_fails += 1,
                        LockWait => {
                            t.lock_waits += 1;
                            t.lock_wait_ns += ev.arg;
                        }
                        _ => {}
                    }
                }
                let spans = resolve_spans(&lane.events, close_at);
                let mut busy = Vec::new();
                for s in &spans {
                    match s.kind {
                        TaskStart | ChunkStart => busy.push((s.start, s.end)),
                        Park => t.park_ns += s.end - s.start,
                        StealSuccess | StealFail => t.steal_wait_ns += s.end - s.start,
                        _ => {}
                    }
                }
                t.busy_ns = union_ns(busy);
                t
            })
            .collect()
    }

    /// Render the profile as Chrome `trace_event` JSON — load the
    /// output in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`. `ts`/`dur` are microseconds relative to the
    /// profiling epoch; each lane is a thread of pid 1.
    pub fn to_chrome_trace(&self) -> String {
        let close_at = self.end_ns();
        let us = |ns: u64| ns as f64 / 1000.0;
        let mut w = Writer::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("traceEvents");
        w.begin_array();
        for (tid, lane) in self.lanes.iter().enumerate() {
            let tid = tid as u64;
            w.begin_object();
            w.key("ph");
            w.string("M");
            w.key("pid");
            w.number(1);
            w.key("tid");
            w.number(tid);
            w.key("name");
            w.string("thread_name");
            w.key("args");
            w.begin_object();
            w.key("name");
            w.string(&lane.name);
            w.end_object();
            w.end_object();
            for s in resolve_spans(&lane.events, close_at) {
                w.begin_object();
                w.key("ph");
                w.string("X");
                w.key("pid");
                w.number(1);
                w.key("tid");
                w.number(tid);
                w.key("name");
                w.string(match s.kind {
                    EventKind::StealSuccess | EventKind::StealFail => "steal",
                    other => other.label(),
                });
                w.key("ts");
                w.float(us(s.start));
                w.key("dur");
                w.float(us(s.end.saturating_sub(s.start)));
                w.key("args");
                w.begin_object();
                match s.kind {
                    EventKind::ChunkStart => {
                        w.key("rows_in");
                        w.number(s.arg_start);
                        w.key("rows_out");
                        w.number(s.arg_end);
                    }
                    EventKind::StealSuccess => {
                        w.key("outcome");
                        w.string("hit");
                        w.key("victim");
                        w.number(s.arg_end);
                    }
                    EventKind::StealFail => {
                        w.key("outcome");
                        w.string("miss");
                    }
                    EventKind::QueryStart => {
                        w.key("ok");
                        w.number(s.arg_end);
                    }
                    EventKind::LockWait => {
                        w.key("wait_ns");
                        w.number(s.arg_start);
                    }
                    _ => {}
                }
                w.end_object();
                w.end_object();
            }
        }
        w.end_array();
        w.key("dropped_events");
        w.number(self.dropped);
        w.end_object();
        w.finish()
    }

    /// Human-readable per-worker utilization table.
    pub fn utilization_table(&self) -> String {
        let window = self.window_ns();
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>9} {:>9} {:>6} {:>7} {:>12} {:>9} {:>8} {:>7}",
            "worker",
            "busy%",
            "busy_ms",
            "park_ms",
            "tasks",
            "chunks",
            "steal ok/try",
            "steal_ms",
            "lock_ms",
            "events"
        );
        for t in self.timelines() {
            let _ = writeln!(
                out,
                "{:<22} {:>6.1} {:>9.2} {:>9.2} {:>6} {:>7} {:>12} {:>9.2} {:>8.2} {:>7}",
                t.name,
                100.0 * t.utilization(window),
                ms(t.busy_ns),
                ms(t.park_ns),
                t.tasks,
                t.chunks,
                format!("{}/{}", t.steal_successes, t.steal_attempts),
                ms(t.steal_wait_ns),
                ms(t.lock_wait_ns),
                t.events,
            );
        }
        let _ = writeln!(
            out,
            "window {:.1} ms, {} lanes, {} events ({} dropped)",
            ms(window),
            self.lanes.len(),
            self.total_events(),
            self.dropped,
        );
        out
    }
}
