//! Per-query span trees.
//!
//! A [`QueryTrace`] is an arena of [`Span`]s plus a stack of currently
//! open spans. Spans nest: `start` while another span is open records the
//! open span as the parent. Timing is relative to the trace's creation
//! instant so a serialized trace is self-contained.

use std::time::{Duration, Instant};

/// Index of a span inside its trace's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) usize);

impl SpanId {
    /// Arena index (position in [`QueryTrace::spans`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One timed region of a query's execution.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    /// Arena index of the enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Offset from the trace epoch.
    pub start_ns: u64,
    /// Zero while the span is still open.
    pub dur_ns: u64,
    /// Named counters, in insertion order.
    pub counters: Vec<(String, u64)>,
}

impl Span {
    /// Add `delta` to the named counter (creating it at zero).
    fn bump(&mut self, name: &str, delta: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += delta;
        } else {
            self.counters.push((name.to_string(), delta));
        }
    }
}

/// A tree of timed spans for one query.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Usually the query text.
    pub label: String,
    epoch: Instant,
    spans: Vec<Span>,
    open: Vec<SpanId>,
}

impl QueryTrace {
    pub fn new(label: impl Into<String>) -> QueryTrace {
        QueryTrace {
            label: label.into(),
            epoch: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Open a span. Its parent is the innermost span still open.
    pub fn start(&mut self, name: impl Into<String>) -> SpanId {
        let id = SpanId(self.spans.len());
        self.spans.push(Span {
            name: name.into(),
            parent: self.open.last().copied(),
            start_ns: self.epoch.elapsed().as_nanos() as u64,
            dur_ns: 0,
            counters: Vec::new(),
        });
        self.open.push(id);
        id
    }

    /// Close a span. Spans must close innermost-first; closing an outer
    /// span force-closes anything still open inside it.
    pub fn end(&mut self, id: SpanId) {
        let now = self.epoch.elapsed().as_nanos() as u64;
        while let Some(top) = self.open.pop() {
            let span = &mut self.spans[top.0];
            span.dur_ns = now.saturating_sub(span.start_ns);
            if top == id {
                return;
            }
        }
    }

    /// Record an externally-timed phase as an already-closed child of the
    /// innermost open span.
    pub fn record_span(&mut self, name: impl Into<String>, dur: Duration) -> SpanId {
        let id = SpanId(self.spans.len());
        let now = self.epoch.elapsed().as_nanos() as u64;
        let dur_ns = dur.as_nanos() as u64;
        self.spans.push(Span {
            name: name.into(),
            parent: self.open.last().copied(),
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            counters: Vec::new(),
        });
        id
    }

    /// Add `delta` to a named counter on the given span.
    pub fn counter(&mut self, id: SpanId, name: &str, delta: u64) {
        self.spans[id.0].bump(name, delta);
    }

    /// Add `delta` to a named counter on the innermost open span (no-op
    /// when nothing is open).
    pub fn counter_current(&mut self, name: &str, delta: u64) {
        if let Some(&top) = self.open.last() {
            self.counter(top, name, delta);
        }
    }

    /// All spans in creation order (parents precede children).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Find a span by name (first match in creation order).
    pub fn span_named(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Total duration of the trace: end of the last-ending span.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0)
    }

    /// One JSON object (single line, no trailing newline) describing the
    /// whole trace. Schema:
    ///
    /// ```json
    /// {"label":"//a/b","total_ns":1234,
    ///  "spans":[{"name":"parse","parent":null,"start_ns":0,"dur_ns":10,
    ///            "counters":{"ppf_count":2}}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut w = crate::json::Writer::new();
        w.begin_object();
        w.key("label");
        w.string(&self.label);
        w.key("total_ns");
        w.number(self.total_ns());
        w.key("spans");
        w.begin_array();
        for span in &self.spans {
            w.begin_object();
            w.key("name");
            w.string(&span.name);
            w.key("parent");
            match span.parent {
                Some(p) => w.number(p.0 as u64),
                None => w.null(),
            }
            w.key("start_ns");
            w.number(span.start_ns);
            w.key("dur_ns");
            w.number(span.dur_ns);
            w.key("counters");
            w.begin_object();
            for (name, value) in &span.counters {
                w.key(name);
                w.number(*value);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Indented text rendering for the REPL.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} ({:.3} ms)\n",
            self.label,
            self.total_ns() as f64 / 1e6
        ));
        for (i, span) in self.spans.iter().enumerate() {
            let mut depth = 0;
            let mut p = span.parent;
            while let Some(id) = p {
                depth += 1;
                p = self.spans[id.0].parent;
            }
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!("{} {:.3} ms", span.name, span.dur_ns as f64 / 1e6));
            if !span.counters.is_empty() {
                let counters: Vec<String> = span
                    .counters
                    .iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect();
                out.push_str(&format!(" [{}]", counters.join(", ")));
            }
            out.push('\n');
            let _ = i;
        }
        out
    }
}
