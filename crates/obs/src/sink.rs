//! Destinations for finished query traces.

use std::collections::VecDeque;
use std::io::Write;

use crate::trace::QueryTrace;

/// Receives finished traces. Implementations decide whether to keep the
/// structured form or serialize immediately.
pub trait TraceSink {
    fn emit(&mut self, trace: &QueryTrace);

    /// Flush buffered output (best-effort; default no-op).
    fn flush(&mut self) {}
}

/// Keeps the last `capacity` traces in memory, oldest evicted first.
pub struct RingBufferSink {
    capacity: usize,
    traces: VecDeque<QueryTrace>,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            traces: VecDeque::new(),
        }
    }

    /// Stored traces, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &QueryTrace> {
        self.traces.iter()
    }

    pub fn last(&self) -> Option<&QueryTrace> {
        self.traces.back()
    }

    pub fn len(&self) -> usize {
        self.traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, trace: &QueryTrace) {
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back(trace.clone());
    }
}

/// Writes one JSON object per trace, one per line (JSON-lines).
pub struct JsonLinesSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer }
    }

    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&mut self, trace: &QueryTrace) {
        // I/O failures must not take the query path down; drop the record.
        let _ = writeln!(self.writer, "{}", trace.to_json());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}
