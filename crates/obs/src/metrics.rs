//! Process-wide metrics: named counters and log₂-bucketed histograms.
//!
//! All updates go through a [`Registry`] guarded by a single mutex; the
//! intended usage is a handful of updates per *query* (not per row), so
//! contention is not a concern. Hot loops should accumulate locally and
//! flush once.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i`, i.e. `[2^(i-1), 2^i)`, with bucket 0 holding exactly zero.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in `[0, 1]`): the representative value
    /// of the bucket where the cumulative count reaches `p * count`,
    /// clamped to the observed min/max. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return self.max;
        }
        // Rank of the sample we want, 1-based.
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Representative value: bucket midpoint.
                let mid = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    lo + (hi - lo) / 2
                };
                return mid.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    /// Point-in-time levels (`set_gauge` overwrites, never accumulates):
    /// current connections, queue depths — anything that goes *down* as
    /// well as up and whose latest value is the only interesting one.
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named-metric registry. Use [`Registry::global`] for the process-wide
/// instance or [`Registry::new`] for an isolated one (tests, bench runs).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Lock the registry, recovering from poisoning: a reporter that
    /// panicked mid-update leaves at worst one metric short — never a
    /// corrupt map — so the data stays usable and later queries must not
    /// be denied their metrics over it.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Add `delta` to a named counter (creating it at zero).
    pub fn incr(&self, name: &str, delta: u64) {
        let mut inner = self.lock_inner();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raise a named counter to `value` if it is currently below it.
    /// Mirrors a monotone process-wide counter (e.g. lock poison
    /// recoveries kept in crates that cannot depend on `obs`) into the
    /// registry without double counting across reporters.
    pub fn set_max(&self, name: &str, value: u64) {
        let mut inner = self.lock_inner();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Overwrite a named gauge with its current level. Unlike counters
    /// (monotone) and histograms (distributions), a gauge answers "what
    /// is the value *right now*" — use it for live connection counts and
    /// other levels that fall as well as rise.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut inner = self.lock_inner();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.lock_inner().gauges.get(name).copied().unwrap_or(0)
    }

    /// Record one sample into a named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.lock_inner();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock_inner().counters.get(name).copied().unwrap_or(0)
    }

    /// Digest of a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.lock_inner()
            .histograms
            .get(name)
            .map(Histogram::summary)
    }

    /// Snapshot of every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock_inner();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Drop every metric (used between REPL `.stats` resets and tests).
    pub fn reset(&self) {
        let mut inner = self.lock_inner();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// Everything the registry knows, at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Plain-text rendering for the REPL's `.stats` command.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("no metrics recorded\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<40} {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<40} {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / p50 / p95 / p99 / max):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} {} / {} / {} / {} / {}\n",
                    h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}
