//! Zero-dependency observability for the PPF pipeline.
//!
//! Three layers, usable independently:
//!
//! * [`trace`] — a per-query span tree ([`QueryTrace`]): nested timed
//!   spans for the pipeline phases (parse → translate → plan → execute →
//!   publish) with arbitrary named `u64` counters attached to each span.
//! * [`metrics`] — a process-wide [`Registry`] of named counters and
//!   log₂-bucketed histograms with p50/p95/p99 summaries.
//! * [`sink`] — where finished traces go: an in-memory ring buffer for
//!   the REPL's `.trace` command, or a JSON-lines writer for offline
//!   analysis. When no sink is attached nothing is allocated or
//!   serialized, so the instrumentation cost is a few `Instant::now()`
//!   calls per query.
//! * [`profile`] — a process-wide event profiler: per-thread lock-free
//!   event buffers (task/steal/park/chunk/lock-wait) aggregated into
//!   per-worker timelines, exportable as Chrome `trace_event` JSON.
//!   Detached hooks cost one relaxed atomic load and a branch.
//!
//! The crate deliberately has **no dependencies** (the build environment
//! is offline) — including for JSON: [`json`] holds the small writer and
//! parser used by the sinks and their round-trip tests.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod trace;

pub use metrics::{HistogramSummary, MetricsSnapshot, Registry};
pub use profile::{Profile, WorkerTimeline};
pub use sink::{JsonLinesSink, RingBufferSink, TraceSink};
pub use trace::{QueryTrace, Span, SpanId};
