//! Profiler contract tests: the detached fast path records nothing,
//! per-lane event order is monotonic under a multi-thread stress run,
//! the chrome-trace export round-trips through `obs::json`, and the
//! timeline aggregation math is what the docs promise.
//!
//! The profiler is a process-wide singleton, so every test that
//! attaches it holds [`guard`] — `#[test]` threads would otherwise
//! steal each other's events.

use obs::profile::{self, Event, EventKind, Lane, Profile};

fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn detached_profiler_records_zero_events() {
    let _g = guard();
    assert!(!profile::is_attached());
    // Hammer the hook while detached: nothing may be buffered.
    for i in 0..10_000 {
        profile::record(EventKind::TaskStart, i);
        profile::record(EventKind::TaskEnd, i);
    }
    assert!(profile::attach());
    let p = profile::detach().expect("attached above");
    assert_eq!(
        p.total_events(),
        0,
        "events recorded while detached leaked into the next attach: {p:?}"
    );
    assert_eq!(p.dropped, 0);
}

#[test]
fn attach_is_exclusive_and_detach_is_idempotent() {
    let _g = guard();
    assert!(profile::detach().is_none(), "no profiler attached yet");
    assert!(profile::attach());
    assert!(!profile::attach(), "second attach must be refused");
    assert!(profile::is_attached());
    assert!(profile::detach().is_some());
    assert!(profile::detach().is_none());
    assert!(!profile::is_attached());
}

#[test]
fn event_order_is_monotonic_under_four_thread_stress() {
    let _g = guard();
    const THREADS: usize = 4;
    const EVENTS: usize = 5_000;
    assert!(profile::attach());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::Builder::new()
                .name(format!("stress-{t}"))
                .spawn(move || {
                    for i in 0..EVENTS {
                        profile::record(EventKind::TaskStart, i as u64);
                        profile::record(EventKind::TaskEnd, i as u64);
                    }
                })
                .unwrap()
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let p = profile::detach().expect("attached above");
    let stress: Vec<_> = p
        .lanes
        .iter()
        .filter(|l| l.name.starts_with("stress-"))
        .collect();
    assert_eq!(stress.len(), THREADS, "one lane per stress thread: {p:?}");
    for lane in stress {
        assert_eq!(lane.events.len(), 2 * EVENTS, "lane {}", lane.name);
        let mut prev = 0u64;
        for (i, ev) in lane.events.iter().enumerate() {
            assert!(
                ev.t_ns >= prev,
                "lane {} event {i} went backwards: {} < {prev}",
                lane.name,
                ev.t_ns
            );
            prev = ev.t_ns;
        }
    }
    assert_eq!(p.dropped, 0, "2*{EVENTS} fits the per-thread buffer");
}

#[test]
fn reattach_does_not_resurrect_old_events() {
    let _g = guard();
    assert!(profile::attach());
    for _ in 0..100 {
        profile::record(EventKind::ChunkStart, 7);
    }
    let first = profile::detach().unwrap();
    assert!(first.total_events() >= 100);

    assert!(profile::attach());
    profile::record(EventKind::Park, 0);
    let second = profile::detach().unwrap();
    let this_lane: usize = second.lanes.iter().map(|l| l.events.len()).sum();
    assert_eq!(this_lane, 1, "stale generation leaked: {second:?}");
    assert_eq!(second.lanes[0].events[0].kind, EventKind::Park);
}

#[test]
fn chrome_trace_round_trips_through_obs_json() {
    let _g = guard();
    assert!(profile::attach());
    let worker = std::thread::Builder::new()
        .name("trace-worker".into())
        .spawn(|| {
            profile::record(EventKind::TaskStart, 0);
            profile::record(EventKind::ChunkStart, 128);
            profile::record(EventKind::ChunkEnd, 40);
            profile::record(EventKind::TaskEnd, 0);
            profile::record(EventKind::StealAttempt, 0);
            profile::record(EventKind::StealSuccess, 2);
            profile::record(EventKind::Park, 0);
            profile::record(EventKind::Unpark, 0);
            profile::record(EventKind::LockWait, 1500);
        })
        .unwrap();
    worker.join().unwrap();
    profile::record(EventKind::QueryStart, 0);
    profile::record(EventKind::QueryEnd, 1);
    let p = profile::detach().expect("attached above");
    assert!(p.total_events() >= 11, "{p:?}");

    let json = p.to_chrome_trace();
    let doc = obs::json::parse(&json).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every lane gets a thread_name metadata record naming it.
    let meta_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(meta_names.contains(&"trace-worker"), "{meta_names:?}");

    // Span events are complete ("X") with numeric ts/dur and carry the
    // kind-specific args the exporter promises.
    let x_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .collect();
    assert!(!x_events.is_empty());
    for e in &x_events {
        assert!(
            matches!(e.get("ts"), Some(obs::json::Value::Number(_))),
            "{e:?}"
        );
        assert!(
            matches!(e.get("dur"), Some(obs::json::Value::Number(_))),
            "{e:?}"
        );
    }
    let names: Vec<&str> = x_events
        .iter()
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    for expected in ["task", "chunk", "steal", "park", "lock_wait", "query"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    let chunk = x_events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("chunk"))
        .unwrap();
    assert_eq!(
        chunk.get("args").unwrap().get("rows_in").unwrap().as_u64(),
        Some(128)
    );
    assert_eq!(
        chunk.get("args").unwrap().get("rows_out").unwrap().as_u64(),
        Some(40)
    );
}

/// Timeline math is testable without the global profiler: `Profile` is
/// a plain value.
#[test]
fn timeline_aggregation_math() {
    let lane = Lane {
        name: "w0".into(),
        events: vec![
            Event {
                t_ns: 0,
                kind: EventKind::TaskStart,
                arg: 0,
            },
            Event {
                t_ns: 100,
                kind: EventKind::ChunkStart,
                arg: 50,
            },
            Event {
                t_ns: 400,
                kind: EventKind::ChunkEnd,
                arg: 10,
            },
            Event {
                t_ns: 500,
                kind: EventKind::TaskEnd,
                arg: 0,
            },
            Event {
                t_ns: 600,
                kind: EventKind::Park,
                arg: 0,
            },
            Event {
                t_ns: 900,
                kind: EventKind::Unpark,
                arg: 0,
            },
            Event {
                t_ns: 900,
                kind: EventKind::StealAttempt,
                arg: 0,
            },
            Event {
                t_ns: 950,
                kind: EventKind::StealFail,
                arg: 0,
            },
            Event {
                t_ns: 960,
                kind: EventKind::LockWait,
                arg: 40,
            },
            Event {
                t_ns: 1000,
                kind: EventKind::TaskStart,
                arg: 0,
            },
            Event {
                t_ns: 1200,
                kind: EventKind::TaskEnd,
                arg: 0,
            },
        ],
    };
    let p = Profile {
        lanes: vec![lane],
        dropped: 3,
    };
    assert_eq!(p.window_ns(), 1200);
    let t = &p.timelines()[0];
    // Chunk [100,400] nests inside task [0,500]: busy is the union,
    // 500 + the second task's 200.
    assert_eq!(t.busy_ns, 700);
    assert_eq!(t.park_ns, 300);
    assert_eq!(t.tasks, 2);
    assert_eq!(t.chunks, 1);
    assert_eq!(t.chunk_rows, 50);
    assert_eq!(t.chunk_rows_max, 50);
    assert_eq!(t.steal_attempts, 1);
    assert_eq!(t.steal_fails, 1);
    assert_eq!(t.steal_wait_ns, 50);
    assert_eq!(t.lock_waits, 1);
    assert_eq!(t.lock_wait_ns, 40);
    let util = t.utilization(p.window_ns());
    assert!((util - 700.0 / 1200.0).abs() < 1e-9);

    let table = p.utilization_table();
    assert!(table.contains("w0"), "{table}");
    assert!(table.contains("steal ok/try"), "{table}");
    assert!(table.contains("(3 dropped)"), "{table}");
}
