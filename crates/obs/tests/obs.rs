//! Tests for the observability crate: histogram percentile math, span
//! tree nesting/ordering, and the JSON-lines sink round-trip.

use std::time::Duration;

use obs::metrics::Histogram;
use obs::{JsonLinesSink, QueryTrace, Registry, RingBufferSink, TraceSink};

// ---------------------------------------------------------------- metrics

#[test]
fn empty_histogram_is_all_zeroes() {
    let h = Histogram::default();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.percentile(0.0), 0);
    assert_eq!(h.percentile(0.5), 0);
    assert_eq!(h.percentile(1.0), 0);
}

#[test]
fn single_sample_percentiles_collapse_to_it() {
    let mut h = Histogram::default();
    h.record(42);
    for p in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.percentile(p), 42, "p={p}");
    }
    assert_eq!(h.min(), 42);
    assert_eq!(h.max(), 42);
    assert_eq!(h.sum(), 42);
}

#[test]
fn zero_lands_in_the_zero_bucket() {
    let mut h = Histogram::default();
    h.record(0);
    h.record(0);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.percentile(0.5), 0);
    assert_eq!(h.percentile(0.99), 0);
}

#[test]
fn max_value_lands_in_the_top_bucket() {
    let mut h = Histogram::default();
    h.record(u64::MAX);
    assert_eq!(h.count(), 1);
    assert_eq!(h.max(), u64::MAX);
    // The top bucket's representative is clamped to the observed max.
    assert_eq!(h.percentile(0.99), u64::MAX);
}

#[test]
fn percentiles_are_monotone_and_bucket_accurate() {
    let mut h = Histogram::default();
    // 90 small samples and 10 large ones: p50 must report the small
    // bucket, p95/p99 the large one.
    for _ in 0..90 {
        h.record(10); // bucket [8, 16)
    }
    for _ in 0..10 {
        h.record(1000); // bucket [512, 1024)
    }
    let p50 = h.percentile(0.50);
    let p95 = h.percentile(0.95);
    let p99 = h.percentile(0.99);
    assert!((8..16).contains(&p50), "p50={p50}");
    assert!((512..1024).contains(&p95), "p95={p95}");
    assert!((512..1024).contains(&p99), "p99={p99}");
    assert!(p50 <= p95 && p95 <= p99);
    // p=1.0 is the max sample.
    assert_eq!(h.percentile(1.0), h.max());
}

#[test]
fn percentile_results_stay_within_observed_range() {
    let mut h = Histogram::default();
    for v in [3u64, 5, 6, 7] {
        h.record(v);
    }
    for p in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
        let v = h.percentile(p);
        assert!((3..=7).contains(&v), "p={p} v={v}");
    }
}

#[test]
fn registry_counters_and_histograms() {
    let reg = Registry::new();
    reg.incr("queries", 1);
    reg.incr("queries", 2);
    reg.observe("rows", 4);
    reg.observe("rows", 1000);
    assert_eq!(reg.counter("queries"), 3);
    assert_eq!(reg.counter("missing"), 0);
    let h = reg.histogram("rows").expect("histogram");
    assert_eq!(h.count, 2);
    assert_eq!(h.sum, 1004);
    assert!(reg.histogram("missing").is_none());

    let snap = reg.snapshot();
    assert_eq!(snap.counters, vec![("queries".to_string(), 3)]);
    assert_eq!(snap.histograms.len(), 1);

    reg.reset();
    assert_eq!(reg.counter("queries"), 0);
    assert!(reg.snapshot().counters.is_empty());
}

// ------------------------------------------------------------------ trace

#[test]
fn spans_nest_under_the_innermost_open_span() {
    let mut t = QueryTrace::new("//a/b");
    let root = t.start("query");
    let parse = t.start("parse");
    t.end(parse);
    let exec = t.start("execute");
    let probe = t.start("probe");
    t.end(probe);
    t.end(exec);
    t.end(root);

    let spans = t.spans();
    assert_eq!(spans.len(), 4);
    assert_eq!(spans[0].name, "query");
    assert_eq!(spans[0].parent, None);
    assert_eq!(spans[1].name, "parse");
    assert_eq!(spans[1].parent, Some(root));
    assert_eq!(spans[2].name, "execute");
    assert_eq!(spans[2].parent, Some(root));
    assert_eq!(spans[3].name, "probe");
    assert_eq!(spans[3].parent, Some(exec));
}

#[test]
fn spans_are_ordered_and_contained_in_their_parents() {
    let mut t = QueryTrace::new("q");
    let outer = t.start("outer");
    std::thread::sleep(Duration::from_millis(2));
    let inner = t.start("inner");
    std::thread::sleep(Duration::from_millis(2));
    t.end(inner);
    t.end(outer);

    let outer = &t.spans()[0];
    let inner = &t.spans()[1];
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.dur_ns > 0);
    assert!(outer.dur_ns >= inner.dur_ns);
    assert!(
        inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
        "child must end before its parent"
    );
    assert_eq!(t.total_ns(), outer.start_ns + outer.dur_ns);
}

#[test]
fn ending_an_outer_span_closes_dangling_children() {
    let mut t = QueryTrace::new("q");
    let outer = t.start("outer");
    let _forgotten = t.start("forgotten");
    t.end(outer);
    assert!(t
        .spans()
        .iter()
        .all(|s| s.dur_ns > 0 || s.start_ns > 0 || s.dur_ns == 0));
    // Both spans are closed: a new span now opens at the top level.
    let top = t.start("next");
    assert_eq!(t.spans()[top.index()].parent, None);
}

#[test]
fn counters_accumulate_per_span() {
    let mut t = QueryTrace::new("q");
    let s = t.start("execute");
    t.counter(s, "rows", 10);
    t.counter(s, "rows", 5);
    t.counter_current("probes", 3);
    t.end(s);
    // counter_current after close is a no-op.
    t.counter_current("probes", 99);

    let span = t.span_named("execute").expect("span");
    assert_eq!(
        span.counters,
        vec![("rows".to_string(), 15), ("probes".to_string(), 3)]
    );
}

#[test]
fn record_span_attaches_closed_child() {
    let mut t = QueryTrace::new("q");
    let root = t.start("query");
    let ext = t.record_span("translate", Duration::from_micros(250));
    t.end(root);
    let span = &t.spans()[ext.index()];
    assert_eq!(span.name, "translate");
    assert_eq!(span.parent, Some(root));
    assert_eq!(span.dur_ns, 250_000);
}

// ------------------------------------------------------------------ sinks

#[test]
fn ring_buffer_evicts_oldest() {
    let mut sink = RingBufferSink::new(2);
    for label in ["a", "b", "c"] {
        let mut t = QueryTrace::new(label);
        let s = t.start("query");
        t.end(s);
        sink.emit(&t);
    }
    assert_eq!(sink.len(), 2);
    let labels: Vec<&str> = sink.traces().map(|t| t.label.as_str()).collect();
    assert_eq!(labels, ["b", "c"]);
    assert_eq!(sink.last().map(|t| t.label.as_str()), Some("c"));
}

#[test]
fn json_lines_round_trip() {
    let mut trace = QueryTrace::new("//book[author=\"Codd\"]");
    let root = trace.start("query");
    let parse = trace.start("parse");
    trace.end(parse);
    let exec = trace.start("execute");
    trace.counter(exec, "rows_scanned", 128);
    trace.counter(exec, "index_probes", 7);
    trace.end(exec);
    trace.end(root);

    let mut sink = JsonLinesSink::new(Vec::new());
    sink.emit(&trace);
    sink.emit(&trace);
    sink.flush();
    let bytes = sink.into_inner();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSON object per line");

    for line in lines {
        let v = obs::json::parse(line).expect("valid JSON");
        assert_eq!(
            v.get("label").and_then(|l| l.as_str()),
            Some("//book[author=\"Codd\"]")
        );
        let spans = v.get("spans").and_then(|s| s.as_array()).expect("spans");
        assert_eq!(spans.len(), 3);
        // Parent links survive the round trip.
        assert_eq!(spans[0].get("parent"), Some(&obs::json::Value::Null));
        assert_eq!(spans[1].get("parent").and_then(|p| p.as_u64()), Some(0));
        // Counters survive the round trip.
        let exec = &spans[2];
        assert_eq!(exec.get("name").and_then(|n| n.as_str()), Some("execute"));
        let counters = exec.get("counters").expect("counters");
        assert_eq!(
            counters.get("rows_scanned").and_then(|c| c.as_u64()),
            Some(128)
        );
        assert_eq!(
            counters.get("index_probes").and_then(|c| c.as_u64()),
            Some(7)
        );
        // Durations are non-negative integers.
        assert!(v.get("total_ns").and_then(|t| t.as_u64()).is_some());
    }
}

#[test]
fn json_escaping_survives_round_trip() {
    let nasty = "quote\" backslash\\ newline\n tab\t unicode\u{1F600} ctrl\u{1}";
    let mut trace = QueryTrace::new(nasty);
    let s = trace.start("phase \"one\"");
    trace.end(s);
    let v = obs::json::parse(&trace.to_json()).expect("valid JSON");
    assert_eq!(v.get("label").and_then(|l| l.as_str()), Some(nasty));
    let spans = v.get("spans").and_then(|s| s.as_array()).unwrap();
    assert_eq!(
        spans[0].get("name").and_then(|n| n.as_str()),
        Some("phase \"one\"")
    );
}
