//! SQL tokenizer.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal with `''` unescaped.
    Str(String),
    /// Hex binary literal `x'AB01'`.
    Blob(Vec<u8>),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Concat, // ||
    Eq,
    Ne, // <> or !=
    Lt,
    Le,
    Gt,
    Ge,
}

/// Lexer error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                // `--` comment to end of line.
                if bytes.get(pos + 1) == Some(&b'-') {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    pos += 1;
                }
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    out.push(Token::Concat);
                    pos += 2;
                } else {
                    return Err(LexError {
                        pos,
                        message: "single `|` is not a SQL operator".into(),
                    });
                }
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(LexError {
                        pos,
                        message: "expected `!=`".into(),
                    });
                }
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(input, pos)?;
                out.push(Token::Str(s));
                pos = next;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(input, pos)?;
                out.push(tok);
                pos = next;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b == b'"' => {
                // `x'..'` hex blob?
                if (b == b'x' || b == b'X') && bytes.get(pos + 1) == Some(&b'\'') {
                    let (s, next) = lex_string(input, pos + 1)?;
                    let mut blob = Vec::with_capacity(s.len() / 2);
                    let hex = s.as_bytes();
                    if hex.len() % 2 != 0 {
                        return Err(LexError {
                            pos,
                            message: "hex literal must have even length".into(),
                        });
                    }
                    for pair in hex.chunks(2) {
                        let hi = (pair[0] as char).to_digit(16);
                        let lo = (pair[1] as char).to_digit(16);
                        match (hi, lo) {
                            (Some(h), Some(l)) => blob.push((h * 16 + l) as u8),
                            _ => {
                                return Err(LexError {
                                    pos,
                                    message: "invalid hex digit in blob literal".into(),
                                })
                            }
                        }
                    }
                    out.push(Token::Blob(blob));
                    pos = next;
                } else if b == b'"' {
                    // Quoted identifier.
                    let end = input[pos + 1..].find('"').ok_or_else(|| LexError {
                        pos,
                        message: "unterminated quoted identifier".into(),
                    })?;
                    out.push(Token::Ident(input[pos + 1..pos + 1 + end].to_string()));
                    pos = pos + end + 2;
                } else {
                    let start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric()
                            || bytes[pos] == b'_'
                            || bytes[pos] == b'$')
                    {
                        pos += 1;
                    }
                    out.push(Token::Ident(input[start..pos].to_string()));
                }
            }
            other => {
                return Err(LexError {
                    pos,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    debug_assert_eq!(input.as_bytes()[start], b'\'');
    let bytes = input.as_bytes();
    let mut pos = start + 1;
    let mut out = String::new();
    while pos < bytes.len() {
        if bytes[pos] == b'\'' {
            if bytes.get(pos + 1) == Some(&b'\'') {
                out.push('\'');
                pos += 2;
            } else {
                return Ok((out, pos + 1));
            }
        } else {
            // Copy the whole UTF-8 character.
            let ch_len = utf8_len(bytes[pos]);
            out.push_str(&input[pos..pos + ch_len]);
            pos += ch_len;
        }
    }
    Err(LexError {
        pos: start,
        message: "unterminated string literal".into(),
    })
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut pos = start;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    let mut is_float = false;
    if pos < bytes.len() && bytes[pos] == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
    {
        is_float = true;
        pos += 1;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    let text = &input[start..pos];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), pos))
            .map_err(|_| LexError {
                pos: start,
                message: "invalid float literal".into(),
            })
    } else {
        text.parse::<i64>()
            .map(|i| (Token::Int(i), pos))
            .map_err(|_| LexError {
                pos: start,
                message: "integer literal out of range".into(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_select() {
        let toks = lex("select A.id, 3.5 from A where A.x <> 'o''brien'").expect("lex");
        assert!(toks.contains(&Token::Ident("select".into())));
        assert!(toks.contains(&Token::Float(3.5)));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Str("o'brien".into())));
    }

    #[test]
    fn lexes_blob_and_concat() {
        let toks = lex("x'00ff' || X'AB'").expect("lex");
        assert_eq!(
            toks,
            vec![
                Token::Blob(vec![0x00, 0xFF]),
                Token::Concat,
                Token::Blob(vec![0xAB])
            ]
        );
    }

    #[test]
    fn lexes_comparisons() {
        let toks = lex("< <= > >= = <> !=").expect("lex");
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("1 -- comment\n 2").expect("lex");
        assert_eq!(toks, vec![Token::Int(1), Token::Int(2)]);
    }

    #[test]
    fn errors() {
        assert!(lex("'open").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("x'ABC'").is_err());
        assert!(lex("x'GG'").is_err());
        assert!(lex("#").is_err());
    }
}
