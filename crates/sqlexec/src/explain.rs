//! `EXPLAIN`-style plan rendering: a human-readable description of the
//! access paths and join order the planner chose.

use crate::ast::{Expr, Select, SelectStmt};
use crate::plan::{plan_select, Access, ExecError};
use crate::render::render_expr;
use relstore::Database;

/// Render the physical plan for every branch of a statement.
pub fn explain_stmt(db: &Database, stmt: &SelectStmt) -> Result<String, ExecError> {
    let mut out = String::new();
    for (i, branch) in stmt.branches.iter().enumerate() {
        if stmt.branches.len() > 1 {
            out.push_str(&format!("-- branch {} of {}\n", i + 1, stmt.branches.len()));
        }
        explain_select(db, branch, &[], 0, &mut out)?;
    }
    if !stmt.order_by.is_empty() {
        out.push_str("sort: ");
        for (i, k) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr(&k.expr, &mut out);
            if k.desc {
                out.push_str(" desc");
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn explain_select(
    db: &Database,
    sel: &Select,
    outer: &[(String, String)],
    depth: usize,
    out: &mut String,
) -> Result<(), ExecError> {
    let plan = plan_select(db, sel, outer)?;
    for (i, step) in plan.steps.iter().enumerate() {
        indent(out, depth);
        let table = db.require(&step.table).map_err(|e| ExecError(e.to_string()))?;
        let rows = table.len();
        out.push_str(&format!(
            "{} {} as {} ({} rows) via ",
            if i == 0 { "scan" } else { "join" },
            step.table,
            step.alias,
            rows
        ));
        match &step.access {
            Access::FullScan => out.push_str("full scan"),
            Access::HashEq { column, key } => {
                let col_name = &table.schema.columns[*column].name;
                out.push_str(&format!("hash join on {col_name} = "));
                render_expr(key, out);
            }
            Access::IndexEq { index, keys } => {
                let ix = &table.indexes()[*index];
                out.push_str(&format!("index {} eq(", ix.name));
                for (j, k) in keys.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    render_expr(k, out);
                }
                out.push(')');
            }
            Access::IndexRange { index, lo, hi } => {
                let ix = &table.indexes()[*index];
                out.push_str(&format!("index {} range[", ix.name));
                match lo {
                    Some((e, inc)) => {
                        render_expr(e, out);
                        out.push_str(if *inc { " <=" } else { " <" });
                    }
                    None => out.push_str("-inf <"),
                }
                out.push_str(" .. ");
                match hi {
                    Some((e, inc)) => {
                        render_expr(e, out);
                        out.push_str(if *inc { " >=" } else { " >" });
                    }
                    None => out.push_str("+inf"),
                }
                out.push(']');
            }
        }
        if !step.residuals.is_empty() {
            out.push_str(&format!(" + {} filter(s)", step.residuals.len()));
        }
        out.push('\n');
        // Recurse into subqueries referenced by the residual filters,
        // with this select's aliases visible as their outer context (the
        // executor plans them the same way).
        let mut inner_outer: Vec<(String, String)> = outer.to_vec();
        for t in &sel.from {
            inner_outer.push((t.alias.clone(), t.table.clone()));
        }
        for r in &step.residuals {
            explain_subqueries(db, r, &inner_outer, depth + 1, out)?;
        }
    }
    let mut inner_outer: Vec<(String, String)> = outer.to_vec();
    for t in &sel.from {
        inner_outer.push((t.alias.clone(), t.table.clone()));
    }
    for f in &plan.late_filters {
        indent(out, depth);
        out.push_str("late filter\n");
        explain_subqueries(db, f, &inner_outer, depth + 1, out)?;
    }
    Ok(())
}

fn explain_subqueries(
    db: &Database,
    e: &Expr,
    outer: &[(String, String)],
    depth: usize,
    out: &mut String,
) -> Result<(), ExecError> {
    match e {
        Expr::Exists(sel) => {
            indent(out, depth);
            out.push_str("exists subquery:\n");
            explain_select(db, sel, outer, depth + 1, out)
        }
        Expr::ScalarSubquery(sel) => {
            indent(out, depth);
            out.push_str("scalar subquery:\n");
            explain_select(db, sel, outer, depth + 1, out)
        }
        Expr::And(xs) | Expr::Or(xs) => {
            for x in xs {
                explain_subqueries(db, x, outer, depth, out)?;
            }
            Ok(())
        }
        Expr::Not(x) => explain_subqueries(db, x, outer, depth, out),
        Expr::Cmp { lhs, rhs, .. } => {
            explain_subqueries(db, lhs, outer, depth, out)?;
            explain_subqueries(db, rhs, outer, depth, out)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use relstore::{ColType, TableSchema, Value};

    #[test]
    fn explains_index_choices() {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            &[("id", ColType::Int), ("k", ColType::Int)],
        ))
        .unwrap();
        {
            let t = db.table_mut("t").unwrap();
            for i in 0..50 {
                t.insert(vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
            }
            t.create_index("t_id", &["id"]).unwrap();
        }
        let stmt = parse_sql(
            "select a.id from t a, t b where a.id = 3 and b.id = a.k order by a.id",
        )
        .unwrap();
        let plan = explain_stmt(&db, &stmt).unwrap();
        assert!(plan.contains("index t_id eq(3)"), "{plan}");
        assert!(plan.contains("index t_id eq(a.k)"), "{plan}");
        assert!(plan.contains("sort: a.id"), "{plan}");
    }

    #[test]
    fn explains_exists_subqueries() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", &[("id", ColType::Int)]))
            .unwrap();
        let stmt = parse_sql(
            "select t.id from t where exists (select null from t u where u.id = t.id)",
        )
        .unwrap();
        let plan = explain_stmt(&db, &stmt).unwrap();
        assert!(plan.contains("exists subquery:"), "{plan}");
    }
}
