//! `EXPLAIN`-style plan rendering: a human-readable description of the
//! access paths and join order the planner chose, and `EXPLAIN ANALYZE`,
//! which executes the statement and annotates every plan step with the
//! actual rows, probes, and wall time measured by the executor.

use crate::ast::{Expr, Select, SelectStmt};
use crate::exec::Executor;
use crate::plan::{plan_select, Access, ExecError};
use crate::render::render_expr;
use relstore::Database;

/// Render the physical plan for every branch of a statement.
pub fn explain_stmt(db: &Database, stmt: &SelectStmt) -> Result<String, ExecError> {
    render_stmt_plan(db, stmt, None)
}

/// Execute the statement with per-step profiling enabled, then render the
/// physical plan with actual per-step counters (invocations, rows in/out,
/// index probes, predicate evaluations, inclusive wall time) alongside the
/// planner's estimates, followed by a whole-query summary line.
///
/// Subquery blocks that never executed (short-circuited away) render with
/// `actual: never executed`.
pub fn explain_analyze(db: &Database, stmt: &SelectStmt) -> Result<String, ExecError> {
    explain_analyze_with_limits(db, stmt, crate::exec::QueryLimits::none())
}

/// [`explain_analyze`] under resource limits: the profiled execution
/// respects the same deadline / scanned-row budget / cancel token a
/// plain query would, so an `ANALYZE` of a pathological statement cannot
/// run away (the shell's `.timeout`/`.maxrows` knobs and the server's
/// per-query deadline both route through here).
pub fn explain_analyze_with_limits(
    db: &Database,
    stmt: &SelectStmt,
    limits: crate::exec::QueryLimits,
) -> Result<String, ExecError> {
    let exec = Executor::new(db);
    exec.set_profiling(true);
    exec.set_limits(limits);
    let t0 = std::time::Instant::now();
    let result = exec.run(stmt)?;
    let elapsed = t0.elapsed();
    let mut out = render_stmt_plan(db, stmt, Some(&exec))?;
    let stats = exec.stats();
    out.push_str(&format!(
        "actual: {} row(s) in {:.3} ms; rows_scanned={} index_probes={} predicate_evals={} subqueries={} pool_threads={} par_tasks={} par_chunks={} par_rows={} par_chunk_max={} par_degraded={} limit_aborts={} cancelled={}\n",
        result.rows.len(),
        elapsed.as_secs_f64() * 1e3,
        stats.rows_scanned,
        stats.index_probes,
        stats.predicate_evals,
        stats.subqueries,
        ppf_pool::current_threads(),
        stats.par_tasks,
        stats.par_chunks,
        stats.par_rows,
        stats.par_chunk_rows_max,
        stats.par_degraded,
        stats.limit_aborts,
        stats.query_cancelled,
    ));
    // One compact entry per fork-or-serial decision the cost model made
    // while running this statement, in execution order.
    let decisions = exec.par_decisions();
    if !decisions.is_empty() {
        out.push_str(&format!("par_decision: {}\n", decisions.join(" ")));
    }
    Ok(out)
}

fn render_stmt_plan(
    db: &Database,
    stmt: &SelectStmt,
    exec: Option<&Executor>,
) -> Result<String, ExecError> {
    let mut out = String::new();
    for (i, branch) in stmt.branches.iter().enumerate() {
        if stmt.branches.len() > 1 {
            out.push_str(&format!("-- branch {} of {}\n", i + 1, stmt.branches.len()));
        }
        explain_select(db, branch, &[], 0, &mut out, exec)?;
    }
    if !stmt.order_by.is_empty() {
        out.push_str("sort: ");
        for (i, k) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_expr(&k.expr, &mut out);
            if k.desc {
                out.push_str(" desc");
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn explain_select(
    db: &Database,
    sel: &Select,
    outer: &[(String, String)],
    depth: usize,
    out: &mut String,
    exec: Option<&Executor>,
) -> Result<(), ExecError> {
    // Prefer the plan the executor actually ran: its residual expressions
    // are the clones whose subquery `Select` addresses key the recorded
    // step stats. Fall back to fresh planning for blocks that never ran.
    let plan = match exec.and_then(|e| e.cached_plan(sel)) {
        Some(p) => p,
        None => std::sync::Arc::new(plan_select(db, sel, outer)?),
    };
    let actuals = exec.map(|e| e.step_stats(sel));
    for (i, step) in plan.steps.iter().enumerate() {
        indent(out, depth);
        let table = db
            .require(&step.table)
            .map_err(|e| ExecError::exec(e.to_string()))?;
        let rows = table.len();
        out.push_str(&format!(
            "{} {} as {} ({} rows) via ",
            if i == 0 { "scan" } else { "join" },
            step.table,
            step.alias,
            rows
        ));
        match &step.access {
            Access::FullScan => out.push_str("full scan"),
            Access::HashEq { column, key } => {
                let col_name = &table.schema.columns[*column].name;
                out.push_str(&format!("hash join on {col_name} = "));
                render_expr(key, out);
            }
            Access::IndexEq { index, keys } => {
                let ix = &table.indexes()[*index];
                out.push_str(&format!("index {} eq(", ix.name));
                for (j, k) in keys.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    render_expr(k, out);
                }
                out.push(')');
            }
            Access::IndexRange { index, lo, hi } | Access::MergeRange { index, lo, hi } => {
                let ix = &table.indexes()[*index];
                let kind = if matches!(step.access, Access::MergeRange { .. }) {
                    "merge"
                } else {
                    "range"
                };
                out.push_str(&format!("index {} {kind}[", ix.name));
                match lo {
                    Some((e, inc)) => {
                        render_expr(e, out);
                        out.push_str(if *inc { " <=" } else { " <" });
                    }
                    None => out.push_str("-inf <"),
                }
                out.push_str(" .. ");
                match hi {
                    Some((e, inc)) => {
                        render_expr(e, out);
                        out.push_str(if *inc { " >=" } else { " >" });
                    }
                    None => out.push_str("+inf"),
                }
                out.push(']');
            }
        }
        if !step.residuals.is_empty() {
            out.push_str(&format!(" + {} filter(s)", step.residuals.len()));
        }
        out.push_str(&format!(
            " (est {:.1} fetched, {:.1} out)",
            step.est_fetched, step.est_rows
        ));
        if exec.is_some() {
            match actuals.as_ref().and_then(|a| a.as_ref()).map(|a| a[i]) {
                Some(op) => {
                    out.push_str(&format!(
                        " [actual: {} invocation(s), {} in, {} out, {} probes, {} evals, {:.3} ms",
                        op.invocations,
                        op.rows_in,
                        op.rows_out,
                        op.index_probes,
                        op.predicate_evals,
                        op.elapsed_ns as f64 / 1e6,
                    ));
                    // Estimation-quality columns: actual rows per
                    // invocation vs. the planner's per-step estimate.
                    if op.invocations > 0 {
                        let act = op.rows_out as f64 / op.invocations as f64;
                        out.push_str(&format!(
                            ", est={:.1} act={:.1} q={:.2}",
                            step.est_rows,
                            act,
                            crate::plan::qerror(step.est_rows, act),
                        ));
                    }
                    out.push(']');
                }
                None => out.push_str(" [actual: never executed]"),
            }
        }
        out.push('\n');
        // Recurse into subqueries referenced by the residual filters,
        // with this select's aliases visible as their outer context (the
        // executor plans them the same way).
        let mut inner_outer: Vec<(String, String)> = outer.to_vec();
        for t in &sel.from {
            inner_outer.push((t.alias.clone(), t.table.clone()));
        }
        for r in &step.residuals {
            explain_subqueries(db, r, &inner_outer, depth + 1, out, exec)?;
        }
    }
    let mut inner_outer: Vec<(String, String)> = outer.to_vec();
    for t in &sel.from {
        inner_outer.push((t.alias.clone(), t.table.clone()));
    }
    for f in &plan.late_filters {
        indent(out, depth);
        out.push_str("late filter\n");
        explain_subqueries(db, f, &inner_outer, depth + 1, out, exec)?;
    }
    Ok(())
}

fn explain_subqueries(
    db: &Database,
    e: &Expr,
    outer: &[(String, String)],
    depth: usize,
    out: &mut String,
    exec: Option<&Executor>,
) -> Result<(), ExecError> {
    match e {
        Expr::Exists(sel) => {
            indent(out, depth);
            out.push_str("exists subquery:\n");
            explain_select(db, sel, outer, depth + 1, out, exec)
        }
        Expr::ScalarSubquery(sel) => {
            indent(out, depth);
            out.push_str("scalar subquery:\n");
            explain_select(db, sel, outer, depth + 1, out, exec)
        }
        Expr::And(xs) | Expr::Or(xs) => {
            for x in xs {
                explain_subqueries(db, x, outer, depth, out, exec)?;
            }
            Ok(())
        }
        Expr::Not(x) => explain_subqueries(db, x, outer, depth, out, exec),
        Expr::Cmp { lhs, rhs, .. } => {
            explain_subqueries(db, lhs, outer, depth, out, exec)?;
            explain_subqueries(db, rhs, outer, depth, out, exec)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use relstore::{ColType, TableSchema, Value};

    #[test]
    fn explains_index_choices() {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "t",
            &[("id", ColType::Int), ("k", ColType::Int)],
        ))
        .unwrap();
        {
            let t = db.table_mut("t").unwrap();
            for i in 0..50 {
                t.insert(vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
            }
            t.create_index("t_id", &["id"]).unwrap();
        }
        let stmt =
            parse_sql("select a.id from t a, t b where a.id = 3 and b.id = a.k order by a.id")
                .unwrap();
        let plan = explain_stmt(&db, &stmt).unwrap();
        assert!(plan.contains("index t_id eq(3)"), "{plan}");
        assert!(plan.contains("index t_id eq(a.k)"), "{plan}");
        assert!(plan.contains("sort: a.id"), "{plan}");
    }

    #[test]
    fn explains_exists_subqueries() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", &[("id", ColType::Int)]))
            .unwrap();
        let stmt =
            parse_sql("select t.id from t where exists (select null from t u where u.id = t.id)")
                .unwrap();
        let plan = explain_stmt(&db, &stmt).unwrap();
        assert!(plan.contains("exists subquery:"), "{plan}");
    }
}
