//! Recursive-descent SQL parser for the dialect the translators emit.
//!
//! Supported grammar (case-insensitive keywords):
//! ```text
//! stmt    := select ('UNION' select)* ['ORDER' 'BY' order_key (',' order_key)*]
//! select  := 'SELECT' ['DISTINCT'] proj (',' proj)* 'FROM' tref (',' tref)*
//!            ['WHERE' expr]
//! proj    := expr ['AS' ident] | 'NULL' | 'COUNT' '(' '*' ')'
//! tref    := ident [ident]          -- table [alias]
//! expr    := or-expr with standard precedence; atoms include literals,
//!            qualified columns, EXISTS(select), scalar (select),
//!            REGEXP_LIKE(expr, 'pat'), BETWEEN, IS [NOT] NULL, NOT, parens
//! ```

use crate::ast::{ArithOp, CmpOp, Expr, OrderKey, Projection, Select, SelectStmt, TableRef};
use crate::lexer::{lex, Token};
use relstore::Value;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a SQL statement.
pub fn parse_sql(input: &str) -> Result<SelectStmt, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.to_string(),
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let stmt = p.stmt()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Maximum nesting depth of the recursive-descent parser (parenthesized
/// expressions, `NOT` chains, subqueries). Hostile input like a million
/// open parens must come back as a [`ParseError`], not a stack overflow —
/// overflow aborts the whole process and cannot be caught. Each level
/// costs ~9 stack frames (the whole precedence chain), so the cap is
/// sized for a 2 MiB thread stack with a wide margin; translator-emitted
/// SQL nests a handful of levels at most.
const MAX_NEST_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: format!(
                "{} (at token {} of {})",
                msg.into(),
                self.pos,
                self.tokens.len()
            ),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume an identifier token equal (case-insensitively) to `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn stmt(&mut self) -> Result<SelectStmt, ParseError> {
        let mut branches = vec![self.select()?];
        while self.eat_kw("union") {
            // `UNION ALL` is not needed by the translators; plain UNION is
            // set semantics (like the paper's splitting).
            branches.push(self.select()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        Ok(SelectStmt { branches, order_by })
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projections = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else {
                None
            };
            projections.push(Projection { expr, alias });
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            // Optional alias: an identifier that is not a clause keyword.
            let alias = match self.peek() {
                Some(Token::Ident(s))
                    if !["where", "order", "union", "group"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    self.ident()?
                }
                _ => table.clone(),
            };
            from.push(TableRef { table, alias });
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projections,
            from,
            where_clause,
        })
    }

    // ----- expressions, loosest to tightest binding -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_NEST_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression nested too deeply"));
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        // Iterative so a pathological `NOT NOT NOT …` chain can't recurse
        // past the stack (the AST it builds is still linear in input size).
        let mut negations = 0usize;
        while self.eat_kw("not") {
            negations += 1;
        }
        if negations > MAX_NEST_DEPTH {
            // The parse itself is iterative, but the AST it would build is
            // that deep — and evaluation/drop of it would not be.
            return Err(self.err("expression nested too deeply"));
        }
        let mut e = self.cmp_expr()?;
        for _ in 0..negations {
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        // BETWEEN / IS NULL / comparison
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated: false,
            });
        }
        if self.peek_kw("not") {
            // `x NOT BETWEEN ...`
            let save = self.pos;
            self.pos += 1;
            if self.eat_kw("between") {
                let lo = self.additive()?;
                self.expect_kw("and")?;
                let hi = self.additive()?;
                return Ok(Expr::Between {
                    expr: Box::new(lhs),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated: true,
                });
            }
            self.pos = save;
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.concat()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.concat()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.atom()?;
        while self.peek() == Some(&Token::Concat) {
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = Expr::Concat(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                // Scalar subquery or parenthesized expression.
                if self.peek_kw("select") {
                    let sel = self.select()?;
                    self.expect(Token::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(sel)))
                } else {
                    let e = self.expr()?;
                    self.expect(Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Blob(b)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bytes(b)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.atom()?;
                match inner {
                    Expr::Literal(Value::Int(i)) => Ok(Expr::Literal(Value::Int(-i))),
                    Expr::Literal(Value::Float(f)) => Ok(Expr::Literal(Value::Float(-f))),
                    other => Ok(Expr::Arith {
                        op: ArithOp::Sub,
                        lhs: Box::new(Expr::int(0)),
                        rhs: Box::new(other),
                    }),
                }
            }
            Some(Token::Ident(id)) => {
                if id.eq_ignore_ascii_case("exists") {
                    self.pos += 1;
                    self.expect(Token::LParen)?;
                    let sel = self.select()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Exists(Box::new(sel)));
                }
                if id.eq_ignore_ascii_case("null") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if id.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if id.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if id.eq_ignore_ascii_case("regexp_like") {
                    self.pos += 1;
                    self.expect(Token::LParen)?;
                    let subject = self.expr()?;
                    self.expect(Token::Comma)?;
                    let pattern = match self.bump() {
                        Some(Token::Str(s)) => s,
                        other => {
                            return Err(self.err(format!(
                                "REGEXP_LIKE pattern must be a string literal, found {other:?}"
                            )))
                        }
                    };
                    self.expect(Token::RParen)?;
                    return Ok(Expr::RegexpLike {
                        subject: Box::new(subject),
                        pattern,
                    });
                }
                if id.eq_ignore_ascii_case("count") {
                    self.pos += 1;
                    self.expect(Token::LParen)?;
                    self.expect(Token::Star)?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::CountStar);
                }
                // Column reference: `alias.col` or bare `col`.
                self.pos += 1;
                if self.peek() == Some(&Token::Dot) {
                    self.pos += 1;
                    let name = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(id),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: id,
                    })
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_stmt;

    /// Parsing the renderer's output must be the identity on the AST.
    fn roundtrip(sql: &str) -> SelectStmt {
        let stmt = parse_sql(sql).expect("parse");
        let rendered = render_stmt(&stmt);
        let stmt2 = parse_sql(&rendered).expect("reparse");
        assert_eq!(stmt, stmt2, "render/parse roundtrip for {sql}");
        stmt
    }

    #[test]
    fn parses_paper_table3_example() {
        let stmt = roundtrip(
            "select distinct F.id, F.dewey_pos, F.text \
             from A, F, Paths F_Paths \
             where F.path_id = F_Paths.id \
             and REGEXP_LIKE(F_Paths.path, '^/A/B/C(/[^/]+)*/F$') \
             and F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
             and A.x = 3 \
             order by F.dewey_pos",
        );
        let sel = &stmt.branches[0];
        assert!(sel.distinct);
        assert_eq!(sel.from.len(), 3);
        assert_eq!(sel.from[2].alias, "F_Paths");
        assert_eq!(stmt.order_by.len(), 1);
    }

    #[test]
    fn parses_exists_subselect() {
        let stmt = roundtrip(
            "select B.id from B where exists (\
             select null from F where F.par_id = B.id and F.text = 2)",
        );
        match stmt.branches[0].where_clause.as_ref().expect("where") {
            Expr::Exists(sub) => {
                assert_eq!(sub.from[0].table, "F");
                assert_eq!(sub.projections.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_union_and_precedence() {
        let stmt = roundtrip(
            "select D.id from D where D.x = 1 or D.x = 2 and D.y < 3 \
             union select E.id from E",
        );
        assert_eq!(stmt.branches.len(), 2);
        // AND binds tighter than OR.
        match stmt.branches[0].where_clause.as_ref().expect("where") {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::And(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_scalar_count_subquery() {
        let stmt = roundtrip(
            "select B.id from B where (select count(*) from C where C.par_id = B.id) = 2",
        );
        match stmt.branches[0].where_clause.as_ref().expect("where") {
            Expr::Cmp { lhs, .. } => match lhs.as_ref() {
                Expr::ScalarSubquery(sub) => {
                    assert!(matches!(sub.projections[0].expr, Expr::CountStar))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_not_between_isnull() {
        roundtrip("select A.id from A where A.x not between 1 and 5");
        roundtrip("select A.id from A where A.x is not null and not A.y is null");
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let stmt = roundtrip("select A.id from A where A.x + 2 * 3 = 7");
        match stmt.branches[0].where_clause.as_ref().expect("where") {
            Expr::Cmp { lhs, .. } => match lhs.as_ref() {
                Expr::Arith {
                    op: ArithOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(
                        rhs.as_ref(),
                        Expr::Arith {
                            op: ArithOp::Mul,
                            ..
                        }
                    ))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_sql("").is_err());
        assert!(parse_sql("select").is_err());
        assert!(parse_sql("select x from").is_err());
        assert!(parse_sql("select x from t where").is_err());
        assert!(parse_sql("select x from t extra junk !!!").is_err());
        assert!(parse_sql("select regexp_like(x, y) from t").is_err());
    }

    #[test]
    fn deep_paren_nesting_is_a_parse_error_not_a_stack_overflow() {
        let bomb = format!(
            "select t.x from t where {}1 = 1{}",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        let err = parse_sql(&bomb).expect_err("must not overflow the stack");
        assert!(
            err.to_string().contains("nested too deeply"),
            "unexpected error: {err}"
        );
        // A depth well inside the limit still parses.
        let ok = format!(
            "select t.x from t where {}1 = 1{}",
            "(".repeat(40),
            ")".repeat(40)
        );
        parse_sql(&ok).expect("moderate nesting parses");
    }

    #[test]
    fn deep_not_chain_is_a_parse_error_not_a_stack_overflow() {
        let bomb = format!("select t.x from t where {} 1 = 1", "not ".repeat(100_000));
        let err = parse_sql(&bomb).expect_err("must not build an unboundedly deep AST");
        assert!(err.to_string().contains("nested too deeply"));
        let ok = format!("select t.x from t where {} 1 = 1", "not ".repeat(40));
        parse_sql(&ok).expect("moderate NOT chain parses");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for sql in [
            "(",
            ")",
            "select t.x from t where (",
            "select t.x from t where regexp_like(",
            "select t.x from t where t.a between 1",
            "select t.x from t where exists (select",
            "select t.x from t order by",
            "select t.x from t union",
            "select count(* from t",
            "select t.x from t where t.a = 'unterminated",
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(parse_sql(sql).is_err(), "expected parse error for {sql:?}");
        }
    }

    #[test]
    fn negative_literals() {
        let stmt = parse_sql("select A.id from A where A.x = -5").expect("parse");
        match stmt.branches[0].where_clause.as_ref().expect("where") {
            Expr::Cmp { rhs, .. } => {
                assert_eq!(rhs.as_ref(), &Expr::Literal(Value::Int(-5)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
