//! `par_cost` — a measured cost model for `ParallelMode::Auto` decisions.
//!
//! PR 3's Auto heuristic forked on blind row-count thresholds
//! (`PAR_MIN_OUTER_ROWS = 64` and friends), which made 217-row queries
//! pay a fan-out that cost more than the work it split (BENCH_3's Q1:
//! warm 4-thread time 2.3× the serial time). This module replaces the
//! thresholds with an estimate in nanoseconds on both sides of the
//! decision:
//!
//! ```text
//! serial_ns   = work × per_row_ns
//! parallel_ns = fork_ns + chunks × chunk_ns + serial_ns / speedup
//! speedup     = 1 + (threads − 1) × efficiency
//! fork iff      parallel_ns < serial_ns × FORK_MARGIN
//! ```
//!
//! The inputs come from three sources, none guessed:
//!
//! * **Calibration** (once per pool size, lazily): `fork_ns` and
//!   `chunk_ns` are measured by timing empty fan-outs on the live global
//!   pool — minimum over trials, so scheduler noise only ever inflates a
//!   single sample, not the model. The `efficiency` *prior* is measured
//!   too: the same CPU-bound busy-loop is timed serially and split
//!   across the pool, and the observed speedup becomes the starting
//!   efficiency. On a single-core host that measures ≈0, so Auto
//!   declines forks from the very first decision instead of learning
//!   the hard way on real queries.
//! * **Serial observation**: every serial branch completion / filter
//!   scan / hash build that the executor runs while a multi-thread pool
//!   exists feeds its measured per-row cost into an EWMA
//!   ([`note_serial`]).
//! * **Parallel observation**: every fork reports its work/span ratio —
//!   summed chunk wall times over end-to-end fan-out time — into the
//!   `efficiency` EWMA ([`note_fork`]). The ratio is measured on the
//!   fork itself, with no estimate in the loop. On a single-core host
//!   efficiency converges toward zero and Auto stops forking; on a real
//!   4-core host it converges toward 1 and forking keeps paying. No
//!   `nproc` special-casing — the machine tells us what parallelism is
//!   worth.
//!
//! Deterministic **exploration** keeps both halves of the estimate
//! alive: every [`EXPLORE_PERIOD`]-th decision that would have been
//! suppressed as `no-gain`/`one-chunk` forks anyway, so a host whose
//! conditions change (cores freed, pool resized) is re-measured instead
//! of being stuck with a stale "parallelism doesn't pay" verdict; and
//! symmetrically, every [`PROBE_PERIOD`]-th decision that *would* fork
//! runs serial instead (`serial(probe)`), because serial completions
//! are the only unbiased source of per-row costs — a model that always
//! forks would otherwise compare fork walls against its own stale
//! estimate forever and never notice the estimate had drifted.
//!
//! Tests pin the model with [`set_cost_override`] (thread-local), which
//! also disables exploration so decisions are a pure function of the
//! override and the inputs.
//!
//! The `work` fed into `decide()` is the executor's fork-work product
//! of per-step `est_fetched` estimates — so table statistics
//! (`relstore::stats`, consumed by `plan::estimate_access`) sharpen
//! Auto's fork decisions for free: better cardinalities in, better
//! nanosecond estimates out. Nothing in this module reads the
//! statistics directly.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Fork only when the parallel estimate beats this fraction of the
/// serial estimate — a projected win below ~15% is inside the model's
/// noise floor and not worth the risk.
const FORK_MARGIN: f64 = 0.85;

/// A chunk must carry at least this many multiples of its own dispatch
/// overhead in useful work, or it is not worth cutting.
const CHUNK_AMORT: f64 = 4.0;

/// Every Nth suppressed fork runs anyway to re-measure efficiency.
/// Prime, so a fixed number of decisions per benchmark round does not
/// pin exploration to the same queries every round.
const EXPLORE_PERIOD: u64 = 29;

/// Every Nth model-approved fork runs serial instead, feeding an
/// unbiased per-row cost into [`note_serial`]. Bounded cost on hosts
/// where forking pays (one serial operator in seven), and the cure for
/// estimate drift: without probes a fork-happy model only ever compares
/// fork walls against its own estimate, so an inflated per-row cost
/// reads as a speedup and sustains itself.
const PROBE_PERIOD: u64 = 7;

/// EWMA weight of a new observation.
const EWMA_ALPHA: f64 = 0.25;

/// What one unit of work costs, and what forking costs, in nanoseconds.
/// `efficiency` is the observed per-extra-thread payoff in `[0, 1]`:
/// 1.0 means `t` threads run `t×` faster, 0.0 means extra threads are
/// pure overhead (the single-core truth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per estimated work-row of a branch pipeline (outer row × planner
    /// fan-out product).
    pub row_ns: f64,
    /// Per row of a path-filter (regex) scan.
    pub scan_ns: f64,
    /// Per row of a hash-join build-side scan.
    pub hash_ns: f64,
    /// Per comparison of the final ORDER BY / merge sort.
    pub sort_cmp_ns: f64,
    /// Fixed cost of one fork-join fan-out on the pool.
    pub fork_ns: f64,
    /// Marginal cost of each chunk (dispatch + per-worker setup).
    pub chunk_ns: f64,
    /// Observed parallel efficiency per extra thread, `[0, 1]`.
    pub efficiency: f64,
}

impl Default for CostModel {
    /// Priors used before any observation lands: optimistic efficiency
    /// (so the first decisions fork and get measured) and mid-range row
    /// costs. All of them wash out within a handful of executions.
    fn default() -> CostModel {
        CostModel {
            row_ns: 150.0,
            scan_ns: 80.0,
            hash_ns: 250.0,
            sort_cmp_ns: 25.0,
            fork_ns: 20_000.0,
            chunk_ns: 3_000.0,
            efficiency: 0.85,
        }
    }
}

/// The kinds of work the model prices. Each has its own learned per-row
/// cost; they share the fork/chunk overheads and the efficiency EWMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Partitioned branch pipeline (outer rows × planner fan-out).
    Branch,
    /// Path-filter regex scan over a table.
    FilterScan,
    /// Hash-join build-side scan.
    HashBuild,
    /// Final ORDER BY merge sort (work = n·log₂n comparisons).
    Sort,
    /// UNION arms executed concurrently (work = summed arm estimates,
    /// priced via `row_ns`; chunks = arms).
    Union,
}

impl WorkKind {
    fn label(self) -> &'static str {
        match self {
            WorkKind::Branch => "branch",
            WorkKind::FilterScan => "filter",
            WorkKind::HashBuild => "hash-build",
            WorkKind::Sort => "sort",
            WorkKind::Union => "union",
        }
    }
}

/// The model's verdict for one potential fan-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParDecision {
    /// Partition into `chunks` pieces. `est_ns` is the serial estimate
    /// the decision was based on (reported in the `par_decision` log).
    Fork { chunks: usize, est_ns: f64 },
    /// Stay serial, with the reason: `"tiny"` (fewer than 2 rows),
    /// `"one-chunk"` (work cannot amortize a second chunk), `"no-gain"`
    /// (the fork estimate does not beat the margin), or `"probe"` (the
    /// model wanted to fork but this execution runs serial to re-measure
    /// the true per-row cost).
    Serial(&'static str),
}

impl ParDecision {
    pub fn is_fork(&self) -> bool {
        matches!(self, ParDecision::Fork { .. })
    }
}

// ----- learned state (process-global, f64 stored as bits) -----

struct Ewma(AtomicU64);

impl Ewma {
    const fn new() -> Ewma {
        // 0 bits == 0.0 sentinel: "no observation yet, use the prior".
        Ewma(AtomicU64::new(0))
    }

    fn get(&self, prior: f64) -> f64 {
        let bits = self.0.load(Relaxed);
        if bits == 0 {
            prior
        } else {
            f64::from_bits(bits)
        }
    }

    fn update(&self, obs: f64) {
        let bits = self.0.load(Relaxed);
        let next = if bits == 0 {
            // First observation replaces the prior outright: priors are
            // order-of-magnitude guesses, and blending toward them 25%
            // per sample would keep decisions biased for several
            // executions after real data arrived.
            obs
        } else {
            let cur = f64::from_bits(bits);
            cur + EWMA_ALPHA * (obs - cur)
        };
        // Observations can legitimately be 0.0 (a fork with no payoff);
        // keep the stored value off the "unobserved" sentinel.
        self.0.store(next.max(1e-9).to_bits(), Relaxed);
    }
}

static ROW_NS: Ewma = Ewma::new();
static SCAN_NS: Ewma = Ewma::new();
static HASH_NS: Ewma = Ewma::new();
static SORT_NS: Ewma = Ewma::new();
static EFFICIENCY: Ewma = Ewma::new();
static EXPLORE_TICK: AtomicU64 = AtomicU64::new(0);
static PROBE_TICK: AtomicU64 = AtomicU64::new(0);
/// Forks taken because of exploration rather than a projected win.
static EXPLORE_FORKS: AtomicU64 = AtomicU64::new(0);

/// Exploration forks taken since process start (suppressed decisions
/// deliberately run in parallel to refresh the efficiency estimate).
pub fn explore_forks() -> u64 {
    EXPLORE_FORKS.load(Relaxed)
}

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<CostModel>> = const { std::cell::Cell::new(None) };
}

/// Pin this thread's cost model for tests, returning the previous
/// override. A pinned model is used verbatim (no calibration, no
/// learning, no exploration), so decisions become a pure function of
/// the inputs. `None` restores the live model.
pub fn set_cost_override(model: Option<CostModel>) -> Option<CostModel> {
    OVERRIDE.with(|o| o.replace(model))
}

fn cost_override() -> Option<CostModel> {
    OVERRIDE.with(|o| o.get())
}

// ----- calibration -----

/// Measured `(fork_ns, chunk_ns, efficiency_prior)` per pool thread
/// count.
type CalibrationMap = std::collections::HashMap<usize, (f64, f64, f64)>;

fn calibrations() -> &'static Mutex<CalibrationMap> {
    static CAL: OnceLock<Mutex<CalibrationMap>> = OnceLock::new();
    CAL.get_or_init(|| Mutex::new(std::collections::HashMap::new()))
}

/// Time one empty fan-out of `chunks` chunks on the global pool,
/// minimum of `trials` runs.
fn time_empty_fanout(pool: &ppf_pool::Pool, chunks: usize, trials: usize) -> f64 {
    let ranges = ppf_pool::even_ranges(chunks, chunks);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let out = pool.map_ranges(&ranges, |_, r| r.len());
        let dt = t0.elapsed().as_nanos() as f64;
        assert_eq!(out.len(), chunks);
        best = best.min(dt);
    }
    best
}

/// Iterations of the calibration busy-loop: roughly a millisecond of
/// serial CPU work on a modern core — large enough that fork overhead
/// is a small fraction of the parallel timing, small enough that the
/// once-per-pool-size calibration stays in the low milliseconds.
const CAL_BUSY_ITERS: usize = 2_000_000;

/// A CPU-bound loop the optimizer cannot fold away (the result is
/// `black_box`ed by the caller) and that touches no memory, so its
/// parallel speedup measures scheduling, not the cache hierarchy.
fn busy_work(range: std::ops::Range<usize>) -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in range {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as u64 | 1);
    }
    x
}

/// Convert a measured serial/parallel wall-time pair into the
/// per-extra-thread efficiency in `[0, 1]` that [`CostModel`] prices
/// with.
fn efficiency_from(serial_ns: f64, parallel_ns: f64, threads: usize) -> f64 {
    if threads < 2 || parallel_ns <= 0.0 || serial_ns <= 0.0 {
        return 0.0;
    }
    let speedup = serial_ns / parallel_ns;
    ((speedup - 1.0) / (threads as f64 - 1.0)).clamp(0.0, 1.0)
}

/// Measure what forking is actually worth on this machine: time the
/// same busy-loop serially and split across the live pool, best of
/// three each. A single-core host measures ≈0 (the pool's threads
/// time-slice one core, plus fan-out overhead); a real multi-core host
/// measures its true per-extra-thread payoff.
fn measure_efficiency(pool: &ppf_pool::Pool, threads: usize) -> f64 {
    let ranges = ppf_pool::even_ranges(CAL_BUSY_ITERS, threads);
    let mut serial = f64::INFINITY;
    let mut parallel = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(busy_work(0..CAL_BUSY_ITERS));
        serial = serial.min(t0.elapsed().as_nanos() as f64);
        let t0 = Instant::now();
        std::hint::black_box(pool.map_ranges(&ranges, |_, r| busy_work(r)));
        parallel = parallel.min(t0.elapsed().as_nanos() as f64);
    }
    efficiency_from(serial, parallel, threads)
}

/// Measured fork/chunk overheads and efficiency prior for a pool of
/// `threads` lanes, calibrated on first use (a few fan-outs plus two
/// busy-loop timings, single-digit milliseconds total) and cached for
/// the process lifetime. The lock is held across calibration so
/// concurrent first-callers measure once.
fn calibrated(threads: usize) -> (f64, f64, f64) {
    // Per-thread cache of the last (threads → triple) answer. `decide`
    // runs on every operator of every query; paying the global mutex +
    // hash lookup each time taxed sub-50µs queries by whole percents.
    // Calibrations are immutable once measured, so a stale hit is
    // impossible — only a pool-size change misses, and that refetches.
    thread_local! {
        static LAST: std::cell::Cell<(usize, f64, f64, f64)> =
            const { std::cell::Cell::new((usize::MAX, 0.0, 0.0, 0.0)) };
    }
    let hit = LAST.with(|c| {
        let v = c.get();
        if v.0 == threads {
            Some((v.1, v.2, v.3))
        } else {
            None
        }
    });
    if let Some(entry) = hit {
        return entry;
    }
    let mut map = calibrations()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(&entry) = map.get(&threads) {
        LAST.with(|c| c.set((threads, entry.0, entry.1, entry.2)));
        return entry;
    }
    let pool = ppf_pool::global();
    let defaults = CostModel::default();
    if threads <= 1 {
        // Nothing to measure for a serial "pool"; the defaults are the
        // permanent answer, so the thread-local may keep them.
        let entry = (defaults.fork_ns, defaults.chunk_ns, defaults.efficiency);
        LAST.with(|c| c.set((threads, entry.0, entry.1, entry.2)));
        return entry;
    }
    if pool.threads() != threads {
        // Pool was resized between the caller's read and ours. Fall back
        // to priors WITHOUT caching anywhere: a later call with a
        // matching pool should measure for real.
        return (defaults.fork_ns, defaults.chunk_ns, defaults.efficiency);
    }
    // Warm the workers out of their first park before timing.
    pool.scope(|_| {});
    let wide = (threads * 2).max(4);
    let t_two = time_empty_fanout(&pool, 2, 5);
    let t_wide = time_empty_fanout(&pool, wide, 5);
    let chunk = ((t_wide - t_two) / (wide - 2) as f64).max(200.0);
    let fork = (t_two - 2.0 * chunk).max(1_000.0);
    let efficiency = measure_efficiency(&pool, threads);
    map.insert(threads, (fork, chunk, efficiency));
    LAST.with(|c| c.set((threads, fork, chunk, efficiency)));
    (fork, chunk, efficiency)
}

/// The model as currently learned/calibrated (or the thread's override).
/// `fork_ns`/`chunk_ns` are for the given pool size.
pub fn snapshot(threads: usize) -> CostModel {
    if let Some(m) = cost_override() {
        return m;
    }
    let d = CostModel::default();
    let (fork_ns, chunk_ns, eff_prior) = calibrated(threads);
    CostModel {
        row_ns: ROW_NS.get(d.row_ns),
        scan_ns: SCAN_NS.get(d.scan_ns),
        hash_ns: HASH_NS.get(d.hash_ns),
        sort_cmp_ns: SORT_NS.get(d.sort_cmp_ns),
        fork_ns,
        chunk_ns,
        efficiency: EFFICIENCY.get(eff_prior),
    }
}

// ----- the decision -----

/// Pure decision function: no globals, no exploration. Public so tests
/// (and the docs) can exercise the formula with a hand-built model.
pub fn decide_from(m: &CostModel, est_ns: f64, rows: usize, threads: usize) -> ParDecision {
    if rows < 2 || threads < 2 {
        return ParDecision::Serial("tiny");
    }
    let speedup = (1.0 + (threads as f64 - 1.0) * m.efficiency.clamp(0.0, 1.0)).max(1.0);
    let max_chunks = threads * 2;
    let amortized = (est_ns / (m.chunk_ns.max(1.0) * CHUNK_AMORT)) as usize;
    let chunks = max_chunks.min(amortized).min(rows);
    if chunks < 2 {
        return ParDecision::Serial("one-chunk");
    }
    let parallel_ns = m.fork_ns + chunks as f64 * m.chunk_ns + est_ns / speedup;
    if parallel_ns < est_ns * FORK_MARGIN {
        ParDecision::Fork { chunks, est_ns }
    } else {
        ParDecision::Serial("no-gain")
    }
}

/// Units of estimated work for `kind` (`rows` scaled by the caller's
/// fan-out knowledge) priced into nanoseconds.
fn price(m: &CostModel, kind: WorkKind, work: f64) -> f64 {
    let per_unit = match kind {
        WorkKind::Branch | WorkKind::Union => m.row_ns,
        WorkKind::FilterScan => m.scan_ns,
        WorkKind::HashBuild => m.hash_ns,
        WorkKind::Sort => m.sort_cmp_ns,
    };
    work * per_unit
}

/// Decide whether to fork `kind` over `rows` partitionable rows, where
/// `work` is the estimated serial work in model units (rows × fan-out
/// for branches, n·log₂n for sorts, plain row counts for scans). Applies
/// the thread-local override when set; otherwise uses the learned model
/// and may return an exploration fork for a decision it would have
/// suppressed.
pub fn decide(kind: WorkKind, work: f64, rows: usize, threads: usize) -> ParDecision {
    if rows < 2 || threads < 2 {
        // Same answer `decide_from` would give, reached without touching
        // the model — this is the common case on every serial operator.
        return ParDecision::Serial("tiny");
    }
    if let Some(m) = cost_override() {
        return decide_from(&m, price(&m, kind, work), rows, threads);
    }
    let m = snapshot(threads);
    let est_ns = price(&m, kind, work);
    let d = decide_from(&m, est_ns, rows, threads);
    match d {
        ParDecision::Fork { .. } => {
            // Periodically run a would-be fork serial so `note_serial`
            // gets an unbiased per-row sample; see `PROBE_PERIOD`.
            let tick = PROBE_TICK.fetch_add(1, Relaxed) + 1;
            if tick.is_multiple_of(PROBE_PERIOD) {
                ParDecision::Serial("probe")
            } else {
                d
            }
        }
        ParDecision::Serial("tiny") => d,
        ParDecision::Serial(_) => {
            // Partitionable work we chose not to fork: occasionally fork
            // anyway so `efficiency` tracks reality instead of history.
            let tick = EXPLORE_TICK.fetch_add(1, Relaxed) + 1;
            if tick.is_multiple_of(EXPLORE_PERIOD) {
                EXPLORE_FORKS.fetch_add(1, Relaxed);
                let chunks = rows.min(threads * 2).max(2).min(rows.max(2));
                ParDecision::Fork { chunks, est_ns }
            } else {
                d
            }
        }
    }
}

// ----- observation -----

/// Floor under which serial timings are too noisy to learn from.
const MIN_LEARN_ROWS: f64 = 64.0;

/// Feed one *serial* execution's measured cost back into the per-row
/// EWMA for `kind`. `work` is in the same units as [`decide`]'s.
pub fn note_serial(kind: WorkKind, work: f64, wall_ns: u64) {
    if cost_override().is_some() || work < MIN_LEARN_ROWS || wall_ns == 0 {
        return;
    }
    let per_unit = (wall_ns as f64 / work).clamp(1.0, 1_000_000.0);
    match kind {
        WorkKind::Branch | WorkKind::Union => ROW_NS.update(per_unit),
        WorkKind::FilterScan => SCAN_NS.update(per_unit),
        WorkKind::HashBuild => HASH_NS.update(per_unit),
        WorkKind::Sort => SORT_NS.update(per_unit),
    }
}

/// Feed one fork's outcome back into the efficiency EWMA. `busy_ns` is
/// the summed wall time of the fork's chunks (the work), `wall_ns` the
/// fan-out's end-to-end time (the span): their ratio is the speedup the
/// fork actually delivered, measured on the fork itself. Earlier
/// versions compared `wall_ns` against the *model's own serial
/// estimate*, which is circular — an inflated per-row cost reads as a
/// phantom speedup and keeps the model forking on hosts where forking
/// loses. Work/span involves no estimate: on one core busy ≈ wall and
/// efficiency converges to 0; on N cores busy approaches N × wall.
pub fn note_fork(busy_ns: u64, wall_ns: u64, threads: usize) {
    if cost_override().is_some() || threads < 2 || wall_ns == 0 || busy_ns == 0 {
        return;
    }
    let speedup_obs = (busy_ns as f64 / wall_ns as f64).clamp(0.05, threads as f64);
    let efficiency_obs = ((speedup_obs - 1.0) / (threads as f64 - 1.0)).clamp(0.0, 1.0);
    EFFICIENCY.update(efficiency_obs);
}

/// Render a decision for the executor's `par_decision` log.
pub fn describe(kind: WorkKind, d: &ParDecision) -> String {
    match d {
        ParDecision::Fork { chunks, est_ns } => format!(
            "{}:fork(chunks={chunks},est={:.0}us)",
            kind.label(),
            est_ns / 1_000.0
        ),
        ParDecision::Serial(reason) => format!("{}:serial({reason})", kind.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(efficiency: f64) -> CostModel {
        CostModel {
            row_ns: 100.0,
            scan_ns: 100.0,
            hash_ns: 100.0,
            sort_cmp_ns: 100.0,
            fork_ns: 10_000.0,
            chunk_ns: 1_000.0,
            efficiency,
        }
    }

    #[test]
    fn tiny_inputs_never_fork() {
        let m = flat(1.0);
        assert_eq!(decide_from(&m, 1e9, 1, 4), ParDecision::Serial("tiny"));
        assert_eq!(decide_from(&m, 1e9, 100, 1), ParDecision::Serial("tiny"));
    }

    #[test]
    fn large_work_forks_with_capped_chunks() {
        let m = flat(1.0);
        // 1M rows at 100ns = 100ms of work: an easy fork.
        match decide_from(&m, 1_000_000.0 * m.row_ns, 1_000_000, 4) {
            ParDecision::Fork { chunks, est_ns } => {
                assert_eq!(chunks, 8, "chunks cap at 2×threads");
                assert!((est_ns - 1e8).abs() < 1.0);
            }
            other => panic!("expected fork, got {other:?}"),
        }
    }

    #[test]
    fn small_work_cannot_amortize_a_second_chunk() {
        let m = flat(1.0);
        // 50 rows × 100ns = 5µs of work vs 1µs per chunk at 4× amort:
        // amortized chunk budget is 1 — stay serial.
        assert_eq!(
            decide_from(&m, 50.0 * m.row_ns, 50, 4),
            ParDecision::Serial("one-chunk")
        );
    }

    #[test]
    fn zero_efficiency_never_forks() {
        // The single-core verdict: however big the work, threads add
        // nothing, so the fork estimate can never clear the margin.
        let m = flat(0.0);
        for rows in [100usize, 10_000, 1_000_000] {
            let d = decide_from(&m, rows as f64 * m.row_ns, rows, 4);
            assert_eq!(d, ParDecision::Serial("no-gain"), "rows={rows}");
        }
    }

    #[test]
    fn marginal_work_respects_the_fork_margin() {
        let m = flat(1.0);
        // Work exactly equal to the overhead cannot win by the margin.
        let est = m.fork_ns + 2.0 * m.chunk_ns;
        assert!(!decide_from(&m, est, 1000, 4).is_fork());
        // 100× the overhead wins easily at full efficiency.
        assert!(decide_from(&m, est * 100.0, 1000, 4).is_fork());
    }

    #[test]
    fn override_pins_decisions_and_disables_learning() {
        let prev = set_cost_override(Some(flat(1.0)));
        // With the override pinned, decide() is deterministic and
        // observations are discarded.
        let d1 = decide(WorkKind::Branch, 1_000_000.0, 1_000_000, 4);
        note_serial(WorkKind::Branch, 1_000_000.0, 1);
        note_fork(1_000_000_000, 1, 4);
        let d2 = decide(WorkKind::Branch, 1_000_000.0, 1_000_000, 4);
        assert_eq!(d1, d2);
        assert!(d1.is_fork());
        set_cost_override(prev);
    }

    #[test]
    fn efficiency_from_measured_speedups() {
        // Perfect 4× scaling at 4 threads: every extra thread pays full.
        assert!((efficiency_from(4.0e6, 1.0e6, 4) - 1.0).abs() < 1e-9);
        // No speedup at all: the single-core verdict.
        assert_eq!(efficiency_from(1.0e6, 1.0e6, 4), 0.0);
        // Parallel SLOWER than serial clamps to zero, not negative.
        assert_eq!(efficiency_from(1.0e6, 2.0e6, 4), 0.0);
        // 2× at 4 threads: a third of the ideal extra-thread payoff.
        assert!((efficiency_from(2.0e6, 1.0e6, 4) - 1.0 / 3.0).abs() < 1e-9);
        // Degenerate inputs never divide by zero.
        assert_eq!(efficiency_from(1.0e6, 0.0, 4), 0.0);
        assert_eq!(efficiency_from(1.0e6, 1.0e6, 1), 0.0);
    }

    #[test]
    fn describe_is_compact() {
        let fork = ParDecision::Fork {
            chunks: 4,
            est_ns: 250_000.0,
        };
        assert_eq!(
            describe(WorkKind::Branch, &fork),
            "branch:fork(chunks=4,est=250us)"
        );
        assert_eq!(
            describe(WorkKind::Sort, &ParDecision::Serial("no-gain")),
            "sort:serial(no-gain)"
        );
    }
}
