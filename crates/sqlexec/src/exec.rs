//! SQL execution: expression evaluation (3-valued logic) and the pipeline
//! interpreter for [`SelectPlan`]s, plus `UNION` / `DISTINCT` / `ORDER BY`
//! statement post-processing.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use regexlite::Regex;
use relstore::{Database, RowId, Table, Value};

use crate::ast::{ArithOp, CmpOp, Expr, Select, SelectStmt};
use crate::par_cost;
use crate::plan::{plan_select, Access, ExecError, SelectPlan, Step};

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// Execution counters, for tests and the experiment harness (they make
/// "PPF scans fewer rows / does fewer probes" measurable, not just faster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by table scans and index lookups.
    pub rows_scanned: u64,
    /// Number of index probes (equality or range).
    pub index_probes: u64,
    /// Subquery executions (EXISTS and scalar).
    pub subqueries: u64,
    /// Residual and late-filter predicate evaluations.
    pub predicate_evals: u64,
    /// Probes answered by the sort-merge cursor instead of a B-tree
    /// descent (subset of `index_probes`).
    pub merge_probes: u64,
    /// Path-filter scans answered from the memo (pattern × table-version
    /// → surviving rows) without touching the table.
    pub path_memo_hits: u64,
    /// Path-filter scans that had to run and populated the memo.
    pub path_memo_misses: u64,
    /// Probe-side buffer acquisitions that could not be served from the
    /// executor's pools (a steady-state hot loop should stop adding these
    /// after warm-up).
    pub probe_allocs: u64,
    /// Parallel operations launched: partitioned path-filter scans and
    /// partitioned branch executions (one per fan-out, regardless of how
    /// many chunks it split into).
    pub par_tasks: u64,
    /// Chunks executed across all parallel operations — `par_chunks /
    /// par_tasks` is the average degree of partitioning actually achieved.
    pub par_chunks: u64,
    /// Statements aborted by a resource limit (deadline or row budget).
    pub limit_aborts: u64,
    /// Statements aborted by their [`CancelToken`].
    pub query_cancelled: u64,
    /// Parallel fan-outs skipped because the pool was already saturated
    /// with other queries' scopes (the branch ran serially instead).
    pub par_degraded: u64,
    /// Input rows distributed across parallel chunks (all fan-outs).
    pub par_rows: u64,
    /// Largest single chunk, in input rows — `par_chunk_rows_max /
    /// (par_rows / par_chunks)` is the partition skew: 1.0 means the
    /// split was perfectly balanced, higher means one worker got a
    /// disproportionate share (Dewey boundary alignment can force this).
    pub par_chunk_rows_max: u64,
}

impl ExecStats {
    /// Field-wise accumulate — merges a partition worker's counters into
    /// the coordinator's.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.subqueries += other.subqueries;
        self.predicate_evals += other.predicate_evals;
        self.merge_probes += other.merge_probes;
        self.path_memo_hits += other.path_memo_hits;
        self.path_memo_misses += other.path_memo_misses;
        self.probe_allocs += other.probe_allocs;
        self.par_tasks += other.par_tasks;
        self.par_chunks += other.par_chunks;
        self.limit_aborts += other.limit_aborts;
        self.query_cancelled += other.query_cancelled;
        self.par_degraded += other.par_degraded;
        self.par_rows += other.par_rows;
        self.par_chunk_rows_max = self.par_chunk_rows_max.max(other.par_chunk_rows_max);
    }
}

/// Per-plan-step execution counters. One `OpStats` accumulates across every
/// invocation of its step — a step inside a nested loop or a correlated
/// subquery is invoked many times, and `invocations` counts the rescans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the step ran (> 1 ⇒ nested-loop rescans / subquery re-execution).
    pub invocations: u64,
    /// Rows the access path fetched and examined.
    pub rows_in: u64,
    /// Rows surviving this step's residual filters (input to the next step).
    pub rows_out: u64,
    /// Index / hash probes actually performed (NULL-key probes are skipped
    /// by the executor and not counted).
    pub index_probes: u64,
    /// Residual predicate evaluations (short-circuited ANDs count what ran).
    pub predicate_evals: u64,
    /// Inclusive wall time — this step and everything nested below it.
    /// Accumulated only while profiling is enabled (`set_profiling`).
    pub elapsed_ns: u64,
}

impl OpStats {
    fn absorb(&mut self, other: &OpStats) {
        self.invocations += other.invocations;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.index_probes += other.index_probes;
        self.predicate_evals += other.predicate_evals;
        self.elapsed_ns += other.elapsed_ns;
    }
}

/// A cached hash-join build side: probe key -> matching row ids.
type HashBuild = Arc<std::collections::BTreeMap<Value, Vec<RowId>>>;

/// A flattened index: every (key, rows) pair in key order, for the
/// sort-merge cursor. Borrows the B-tree's own keys — building one costs a
/// single traversal and `len` pointer pairs, no key copies.
type MergeEntries<'db> = Arc<Vec<(&'db [Value], &'db [RowId])>>;

/// Path-filter memo key: table identity (uid + version — see
/// `Table::uid`), subject column, and the pattern text. The version
/// component makes invalidation automatic: any table mutation bumps it
/// and old entries simply stop being looked up.
type PathMemoKey = (u64, u64, usize, String);

const REGEX_CACHE_CAP: usize = 1024;
const PATH_MEMO_CAP: usize = 512;
const CACHE_SHARDS: usize = 16;

/// A sharded, process-wide cache. Keys hash to one of [`CACHE_SHARDS`]
/// independently locked maps, so pool workers and concurrent engine
/// queries touching different keys rarely contend on the same lock.
/// Replaces the earlier thread-local caches, which silently recompiled
/// every pattern once per pool worker and kept per-thread hit counters
/// that never added up.
struct Sharded<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    per_shard_cap: usize,
}

/// Cross-query cache locks recovered from poisoning. These caches are
/// process-global, so before PR 4 a single panic while a shard lock was
/// held bricked every subsequent query that hashed to that shard.
static CACHE_POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Sharded-cache locks recovered from poisoning since process start.
pub fn cache_poison_recoveries() -> u64 {
    CACHE_POISON_RECOVERIES.load(Relaxed)
}

/// Lock one cache shard, recovering from poisoning. The poisoned shard is
/// *cleared*: a panic mid-`insert` could in principle have left a
/// half-updated map, and every entry is a pure cache that re-warms on the
/// next miss — dropping them is always correct, keeping them is not
/// provably so.
fn lock_shard<K, V>(shard: &Mutex<HashMap<K, V>>) -> std::sync::MutexGuard<'_, HashMap<K, V>> {
    shard.lock().unwrap_or_else(|poisoned| {
        shard.clear_poison();
        CACHE_POISON_RECOVERIES.fetch_add(1, Relaxed);
        let mut guard = poisoned.into_inner();
        guard.clear();
        guard
    })
}

impl<K: Hash + Eq, V: Clone> Sharded<K, V> {
    fn new(cap: usize) -> Sharded<K, V> {
        Sharded {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_cap: (cap / CACHE_SHARDS).max(1),
        }
    }

    fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> &Mutex<HashMap<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        lock_shard(self.shard_of(key)).get(key).cloned()
    }

    /// Insert, clearing the target shard first when it is at capacity
    /// (coarse but effective bound; entries re-warm on next use).
    fn insert(&self, key: K, value: V) {
        let mut map = lock_shard(self.shard_of(&key));
        if map.len() >= self.per_shard_cap {
            map.clear();
        }
        map.insert(key, value);
    }

    fn clear(&self) {
        for s in &self.shards {
            lock_shard(s).clear();
        }
    }
}

/// Compiled-program cache for `REGEXP_LIKE`, keyed by pattern text.
/// Process-wide so every executor — including short-lived per-query ones
/// and pool partition workers — shares one compiled program per pattern,
/// and with it the pattern's already-built lazy-DFA states.
fn regex_cache() -> &'static Sharded<String, Arc<Regex>> {
    static CACHE: OnceLock<Sharded<String, Arc<Regex>>> = OnceLock::new();
    CACHE.get_or_init(|| Sharded::new(REGEX_CACHE_CAP))
}

/// Memoized path-filter scans: which rows of a (table snapshot, column)
/// survive a pattern. Repeated queries skip the scan and the regex work
/// entirely. Two concurrent queries missing on the same key may both run
/// the scan (last insert wins) — duplicated work once, never a wrong
/// answer.
fn path_memo() -> &'static Sharded<PathMemoKey, Arc<Vec<RowId>>> {
    static CACHE: OnceLock<Sharded<PathMemoKey, Arc<Vec<RowId>>>> = OnceLock::new();
    CACHE.get_or_init(|| Sharded::new(PATH_MEMO_CAP))
}

/// Drop the process-wide compiled-regex cache and path-filter memo.
/// Benchmarks call this to measure true cold-cache behaviour; correctness
/// never requires it (memo keys embed the table version).
pub fn clear_filter_caches() {
    regex_cache().clear();
    path_memo().clear();
}

/// Cooperative cancellation handle for one query. Clone it, hand one copy
/// to the executor via [`QueryLimits::cancel_token`], keep the other;
/// [`CancelToken::cancel`] makes the executor abort with
/// [`ExecError::Cancelled`] at its next loop-boundary check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Relaxed)
    }
}

/// Per-query resource limits, all optional and all enforced
/// *cooperatively*: the executor checks them at scan/join/filter loop
/// boundaries, so an over-budget query stops within one check interval
/// ([`LIMIT_CHECK_INTERVAL`] rows) of crossing the line, not instantly.
#[derive(Debug, Clone, Default)]
pub struct QueryLimits {
    /// Abort with [`ExecError::Limit`] once `Instant::now()` passes this.
    pub deadline: Option<Instant>,
    /// Abort with [`ExecError::Limit`] once the statement has scanned
    /// this many rows. Rows scanned bound the executor's materialized
    /// state (candidate buffers, result rows), so this doubles as the
    /// memory budget. Under partitioned execution each worker inherits
    /// the full budget, so enforcement is approximate by up to the
    /// fan-out factor.
    pub max_rows_scanned: Option<u64>,
    /// Abort with [`ExecError::Cancelled`] once this token fires.
    pub cancel: Option<CancelToken>,
}

impl QueryLimits {
    /// No limits — the default for every query that doesn't opt in.
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }

    /// Set a deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryLimits {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Set an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryLimits {
        self.deadline = Some(deadline);
        self
    }

    /// Set the scanned-row budget.
    pub fn with_max_rows(mut self, rows: u64) -> QueryLimits {
        self.max_rows_scanned = Some(rows);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> QueryLimits {
        self.cancel = Some(token);
        self
    }

    /// True when every limit is absent (the executor skips all checks).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rows_scanned.is_none() && self.cancel.is_none()
    }

    /// Poll the cancel token and the deadline (not the row budget, which
    /// only the owning executor tracks). Usable from pool workers, which
    /// hold a clone of the coordinator's limits.
    pub(crate) fn check_interrupt(&self) -> Result<(), ExecError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(ExecError::cancelled("cancel token fired".to_string()));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(ExecError::limit("deadline exceeded".to_string()));
            }
        }
        Ok(())
    }
}

/// Rows between deadline/cancel checks. Row-budget accounting is exact;
/// only the clock read and the token load are decimated.
const LIMIT_CHECK_INTERVAL: u64 = 256;

/// Test-only fault injection, compiled in unconditionally so integration
/// tests (and the CI poison-recovery stress step) can exercise the
/// panic-containment path through the public API.
#[doc(hidden)]
pub mod test_hooks {
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

    static PANIC_NEXT_WORKER: AtomicBool = AtomicBool::new(false);

    /// Arm a one-shot panic in the next partitioned-branch pool task.
    pub fn arm_worker_panic() {
        PANIC_NEXT_WORKER.store(true, SeqCst);
    }

    pub(crate) fn take_worker_panic() -> bool {
        PANIC_NEXT_WORKER.swap(false, SeqCst)
    }
}

/// Intra-query parallelism strategy for this thread's executors: `Auto`
/// partitions when the outer run (or filter scan) is large enough to pay
/// for the fan-out, `ForceOff` pins the original serial pipeline, and
/// `ForceOn` partitions whenever there are at least two rows to split —
/// the A/B lever equivalence tests and `perf_check` use. Thread-local so
/// concurrently running tests cannot perturb each other; partition
/// workers inherit the coordinator's setting (pinned to `ForceOff`
/// inside a worker — parallelism never nests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    #[default]
    Auto,
    ForceOff,
    ForceOn,
}

thread_local! {
    static PARALLEL_MODE: std::cell::Cell<ParallelMode> =
        const { std::cell::Cell::new(ParallelMode::Auto) };
}

/// Set this thread's parallel-execution mode, returning the previous one.
pub fn set_parallel_mode(mode: ParallelMode) -> ParallelMode {
    PARALLEL_MODE.with(|m| m.replace(mode))
}

/// This thread's current parallel-execution mode.
pub fn parallel_mode() -> ParallelMode {
    PARALLEL_MODE.with(|m| m.get())
}

// `Auto` fork decisions are priced by the measured cost model in
// [`crate::par_cost`] — there are no fixed row thresholds anymore. The
// only remaining constant is the `ForceOn` chunking rule (at least two
// chunks, at most 2 × threads), computed inline at each fan-out site.

/// `ForceOn` chunk count for `n` partitionable rows: always ≥ 2 chunks
/// (ForceOn means "partition whenever there is anything to split"),
/// capped at twice the pool width.
fn force_on_chunks(n: usize, threads: usize) -> usize {
    n.min(threads * 2).max(2)
}

thread_local! {
    static FILTER_CACHES: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Enable or disable the compiled-regex cache and the path-filter memo
/// for this thread, returning the previous setting. Disabling restores
/// the engine's original behaviour — one regex compilation per
/// `REGEXP_LIKE` *evaluation* and a fresh filter scan per query — and
/// exists so A/B benchmarks (`perf_check`) can measure the caches'
/// contribution honestly.
pub fn set_filter_caches_enabled(on: bool) -> bool {
    FILTER_CACHES.with(|c| c.replace(on))
}

/// Whether this thread's regex cache and path-filter memo are active.
pub fn filter_caches_enabled() -> bool {
    FILTER_CACHES.with(|c| c.get())
}

/// Row-emission callback threaded through the nested-loop machinery;
/// returning `Ok(false)` stops the enclosing loops early.
type EmitFn<'a, 'db> =
    dyn FnMut(&Executor<'db>, &mut Vec<Binding<'db>>) -> Result<bool, ExecError> + 'a;

/// One bound alias during execution.
#[derive(Clone)]
struct Binding<'db> {
    alias: Arc<str>,
    table: &'db Table,
    rid: RowId,
}

/// A resolved ORDER BY key: a projected output column by position, or an
/// expression computed against the branch's own bindings.
enum KeyKind {
    Output(usize),
    Computed(Expr),
}

/// Evaluate one surviving binding into its `(sort_key, row)` pair — the
/// per-row tail of statement execution, shared by the serial emit closure
/// and partition workers.
fn project_row<'db>(
    exec: &Executor<'db>,
    sel: &Select,
    keys: &[(KeyKind, bool)],
    env: &mut Vec<Binding<'db>>,
) -> Result<(Vec<Value>, Vec<Value>), ExecError> {
    let row: Vec<Value> = sel
        .projections
        .iter()
        .map(|p| exec.eval(&p.expr, env))
        .collect::<Result<_, _>>()?;
    // Only computed keys are materialized; keys naming an output column
    // compare on the row in place (`cmp_keyed`), so the common
    // ORDER-BY-an-output-column case allocates no key vector at all.
    let n_computed = keys
        .iter()
        .filter(|(k, _)| matches!(k, KeyKind::Computed(_)))
        .count();
    let mut sort_key = Vec::new();
    if n_computed > 0 {
        sort_key.reserve_exact(n_computed);
        for (kind, _) in keys {
            if let KeyKind::Computed(e) = kind {
                sort_key.push(exec.eval(e, env)?);
            }
        }
    }
    Ok((sort_key, row))
}

/// The Dewey-position column structural joins window on (`shred`'s naming;
/// duplicated here because `sqlexec` sits below `shred` in the crate DAG).
const DEWEY_COL: &str = "dewey_pos";

/// Nudge partition boundaries so no cut lands between a row and its Dewey
/// descendant: while the row left of a boundary is a byte-prefix (i.e. an
/// ancestor — the binary Dewey encoding is 3 bytes per component) of the
/// row right of it, the boundary slides right, keeping each subtree run
/// with its root. Correctness never depends on this — every outer row's
/// whole join window is processed by the worker that owns the row — but
/// aligned chunks keep each worker's merge cursor walking one contiguous,
/// monotone Dewey range. Tables without a Dewey column are left as split.
fn align_ranges_to_dewey(table: &Table, rows: &[RowId], ranges: &mut Vec<std::ops::Range<usize>>) {
    let Some(ci) = table.schema.col(DEWEY_COL) else {
        return;
    };
    if table.schema.columns[ci].ty != relstore::ColType::Bytes {
        return;
    }
    let dewey = |i: usize| -> Option<&[u8]> {
        match &table.row(rows[i])[ci] {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    };
    let mut bounds: Vec<usize> = ranges.iter().map(|r| r.start).collect();
    for b in bounds.iter_mut().skip(1) {
        while *b < rows.len() {
            match (dewey(*b - 1), dewey(*b)) {
                (Some(anc), Some(desc)) if desc.len() > anc.len() && desc.starts_with(anc) => {
                    *b += 1;
                }
                _ => break,
            }
        }
    }
    bounds.push(rows.len());
    bounds.dedup();
    *ranges = bounds
        .windows(2)
        .map(|w| w[0]..w[1])
        .filter(|r| !r.is_empty())
        .collect();
}

/// A projected result row paired with its *computed* sort keys (keys
/// naming an output column compare directly on the row — see
/// [`cmp_keyed`] — so they are not materialized per row).
type KeyedRow = (Vec<Value>, Vec<Value>);

/// Compare two keyed rows under the statement's ORDER BY keys. Output
/// keys index the projected row in place; computed keys consume the
/// precomputed key vector positionally. Matches the serial executor's
/// ordering exactly (total order via `cmp_total`, DESC by reversal).
fn cmp_keyed(keys: &[(KeyKind, bool)], a: &KeyedRow, b: &KeyedRow) -> std::cmp::Ordering {
    let mut ci = 0;
    for (kind, desc) in keys {
        let ord = match kind {
            KeyKind::Output(i) => a.1[*i].cmp_total(&b.1[*i]),
            KeyKind::Computed(_) => {
                let ord = a.0[ci].cmp_total(&b.0[ci]);
                ci += 1;
                ord
            }
        };
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Everything one partition worker hands back to the coordinator.
struct WorkerResult {
    outcome: Result<(), ExecError>,
    rows: Vec<KeyedRow>,
    /// COUNT(*) partial aggregate (partitioned aggregation only).
    count: i64,
    /// Wall time this worker spent on its chunk; the coordinator sums
    /// these into the fork's "work" side of the work/span efficiency
    /// observation ([`par_cost::note_fork`]).
    busy_ns: u64,
    /// Depth-0 row-loop counters (the worker's share of the outer run).
    depth0: OpStats,
    /// The worker executor's global counters (depths ≥ 1, subqueries).
    stats: ExecStats,
    step_stats: HashMap<usize, Vec<OpStats>>,
    plans: HashMap<usize, Arc<SelectPlan>>,
}

/// Caches shared by every worker executor of one fan-out (and seeded
/// from the coordinator's own). Before this existed, each partition
/// worker's fresh `Executor` re-flattened merge index arrays and rebuilt
/// hash-join build sides per chunk — O(index) work per chunk that
/// dwarfed the chunk itself on small queries (BENCH_3's Q1 regression).
/// The map locks are held across a build, so a side is built exactly
/// once per fan-out and its `rows_scanned` are charged exactly once,
/// keeping parallel stats byte-identical to serial.
struct SharedExecCaches<'db> {
    merge: Mutex<HashMap<(String, usize), MergeEntries<'db>>>,
    hash: Mutex<HashMap<(String, usize), HashBuild>>,
}

/// Lock a shared-cache map, recovering from poisoning (entries are pure
/// caches; a panicking builder leaves no partial entry because inserts
/// happen after construction completes).
fn lock_cache<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| {
        CACHE_POISON_RECOVERIES.fetch_add(1, Relaxed);
        poisoned.into_inner()
    })
}

/// A coordinator's whole plan snapshot behind one `Arc`, keyed by
/// `Select` address.
type PlanSnapshot = Arc<HashMap<usize, Arc<SelectPlan>>>;

/// The SQL executor. Borrow a database, run statements.
pub struct Executor<'db> {
    db: &'db Database,
    stats: RefCell<ExecStats>,
    /// Per-statement plan cache keyed by `Select` address; cleared at each
    /// top-level `run` so addresses cannot dangle across statements.
    plans: RefCell<HashMap<usize, Arc<SelectPlan>>>,
    /// Plans seeded from a previous statement execution (the engine's
    /// query cache re-uses `Select` ASTs behind shared pointers, keeping
    /// addresses stable). Consulted by `plan_for` after `plans`; never
    /// cleared by `run`.
    seeded: RefCell<HashMap<usize, Arc<SelectPlan>>>,
    /// Zero-copy variant of `seeded` for partition workers: the whole
    /// coordinator snapshot behind one `Arc`, consulted read-only by
    /// `plan_for` instead of being cloned entry-by-entry into each
    /// worker executor.
    seeded_shared: RefCell<Option<PlanSnapshot>>,
    /// Caches shared with (or inherited from) a fan-out's sibling
    /// executors; see [`SharedExecCaches`]. Reset per statement.
    shared_caches: RefCell<Option<Arc<SharedExecCaches<'db>>>>,
    /// `par_decision` log for EXPLAIN ANALYZE: one compact entry per
    /// fork-or-serial decision the cost model (or ForceOn) made while
    /// executing the current statement. Cleared per statement.
    par_log: RefCell<Vec<String>>,
    /// Slot holding the current `COUNT(*)` aggregate while its projection
    /// is evaluated.
    count_result: std::cell::Cell<Option<i64>>,
    /// Hash-join build sides, keyed by (table, column) and cached for the
    /// whole statement (cleared per `run`, like the plan cache).
    hash_builds: RefCell<HashMap<(String, usize), HashBuild>>,
    /// Flattened indexes for the sort-merge cursor, keyed by (table,
    /// index position). Valid for this executor's lifetime — the database
    /// borrow is immutable.
    merge_arrays: RefCell<HashMap<(String, usize), MergeEntries<'db>>>,
    /// Sort-merge cursor positions keyed by (Select address, step depth);
    /// cleared per `run` alongside the plan cache.
    merge_cursors: RefCell<HashMap<(usize, usize), usize>>,
    /// Pool of probe-row buffers (one live per nested-loop depth);
    /// acquiring past the pool counts into `ExecStats::probe_allocs`.
    row_buf_pool: RefCell<Vec<Vec<RowId>>>,
    /// Scratch composite-key buffer for `IndexEq` probes, reused across
    /// probes instead of a fresh `Vec<Value>` each.
    key_scratch: RefCell<Vec<Value>>,
    /// Per-step counters keyed by `Select` address (same key as the plan
    /// cache), one slot per plan step; cleared at each top-level `run`.
    step_stats: RefCell<HashMap<usize, Vec<OpStats>>>,
    /// When true, `OpStats::elapsed_ns` is measured (two `Instant` reads
    /// per step invocation); counters are maintained regardless.
    profiling: std::cell::Cell<bool>,
    /// Per-query limits ([`Executor::set_limits`]); `limits_active`
    /// mirrors `!limits.is_unlimited()` so the per-row hot path pays one
    /// `Cell` read when no limits are set.
    limits: RefCell<QueryLimits>,
    limits_active: Cell<bool>,
    /// Rows charged against `QueryLimits::max_rows_scanned` so far.
    rows_charged: Cell<u64>,
    /// Rows since the last deadline/cancel check.
    limit_tick: Cell<u64>,
}

impl<'db> Executor<'db> {
    pub fn new(db: &'db Database) -> Executor<'db> {
        Executor {
            db,
            stats: RefCell::new(ExecStats::default()),
            plans: RefCell::new(HashMap::new()),
            seeded: RefCell::new(HashMap::new()),
            seeded_shared: RefCell::new(None),
            shared_caches: RefCell::new(None),
            par_log: RefCell::new(Vec::new()),
            count_result: std::cell::Cell::new(None),
            hash_builds: RefCell::new(HashMap::new()),
            merge_arrays: RefCell::new(HashMap::new()),
            merge_cursors: RefCell::new(HashMap::new()),
            row_buf_pool: RefCell::new(Vec::new()),
            key_scratch: RefCell::new(Vec::new()),
            step_stats: RefCell::new(HashMap::new()),
            profiling: std::cell::Cell::new(false),
            limits: RefCell::new(QueryLimits::none()),
            limits_active: Cell::new(false),
            rows_charged: Cell::new(0),
            limit_tick: Cell::new(0),
        }
    }

    /// Enable per-step wall-time measurement (used by `EXPLAIN ANALYZE`).
    pub fn set_profiling(&self, on: bool) {
        self.profiling.set(on);
    }

    /// Install per-query resource limits. They apply to every statement
    /// this executor runs until replaced; the row budget resets at each
    /// top-level [`Executor::run`].
    pub fn set_limits(&self, limits: QueryLimits) {
        self.limits_active.set(!limits.is_unlimited());
        *self.limits.borrow_mut() = limits;
        self.rows_charged.set(0);
        self.limit_tick.set(0);
    }

    /// The limits currently installed (cloned; used to propagate the
    /// coordinator's limits into partition workers).
    pub fn limits(&self) -> QueryLimits {
        self.limits.borrow().clone()
    }

    /// Charge `n` scanned rows against the limits. Row-budget violations
    /// surface immediately; the deadline and cancel token are polled every
    /// [`LIMIT_CHECK_INTERVAL`] charged rows. Callers guard with
    /// `limits_active` so the unlimited path costs one `Cell` read.
    #[inline]
    fn charge_rows(&self, n: u64) -> Result<(), ExecError> {
        if !self.limits_active.get() {
            return Ok(());
        }
        let charged = self.rows_charged.get() + n;
        self.rows_charged.set(charged);
        let limits = self.limits.borrow();
        if let Some(max) = limits.max_rows_scanned {
            if charged > max {
                return Err(ExecError::limit(format!(
                    "row budget exceeded: scanned {charged} rows (budget {max})"
                )));
            }
        }
        let tick = self.limit_tick.get() + n;
        if tick >= LIMIT_CHECK_INTERVAL {
            self.limit_tick.set(0);
            self.check_deadline(&limits)?;
        } else {
            self.limit_tick.set(tick);
        }
        Ok(())
    }

    fn check_deadline(&self, limits: &QueryLimits) -> Result<(), ExecError> {
        limits.check_interrupt()
    }

    /// Force a deadline/cancel poll now (loop boundaries that process an
    /// unbounded amount of work per row, e.g. the branch fan-out).
    fn check_limits_now(&self) -> Result<(), ExecError> {
        if !self.limits_active.get() {
            return Ok(());
        }
        self.check_deadline(&self.limits.borrow())
    }

    /// Per-step counters for a `Select` executed by the current statement
    /// (`None` if the block never ran — e.g. a short-circuited subquery).
    /// Slots align with the plan's steps in execution order.
    pub fn step_stats(&self, sel: &Select) -> Option<Vec<OpStats>> {
        self.step_stats
            .borrow()
            .get(&(sel as *const Select as usize))
            .cloned()
    }

    /// The plan the current statement actually used for `sel`, if that
    /// block was planned. `EXPLAIN ANALYZE` renders subquery blocks from
    /// this plan so they are the very `Select` clones the executor
    /// profiled (re-planning would produce fresh clones whose addresses
    /// match no recorded counters).
    pub fn cached_plan(&self, sel: &Select) -> Option<Arc<SelectPlan>> {
        self.plans
            .borrow()
            .get(&(sel as *const Select as usize))
            .cloned()
    }

    /// Every (plan, per-step counters) pair the current statement
    /// recorded, across all executed blocks (branches and subqueries), in
    /// no particular order. Lets callers roll counters up by table — e.g.
    /// "rows examined vs surviving on the `Paths` table" — without
    /// knowing the statement's shape.
    pub fn profiled_steps(&self) -> Vec<(Arc<SelectPlan>, Vec<OpStats>)> {
        let plans = self.plans.borrow();
        self.step_stats
            .borrow()
            .iter()
            .filter_map(|(key, ops)| plans.get(key).map(|p| (p.clone(), ops.clone())))
            .collect()
    }

    /// Snapshot of every plan the current statement used, keyed by
    /// `Select` address. The engine's query cache captures this after the
    /// first execution and replays it via [`Executor::seed_plans`] into
    /// fresh executors — sound because the cached statement's `Select`s
    /// live behind shared pointers and keep their addresses.
    pub fn plan_snapshot(&self) -> HashMap<usize, Arc<SelectPlan>> {
        self.plans.borrow().clone()
    }

    /// Pre-load plans captured by [`Executor::plan_snapshot`] so the next
    /// `run` skips planning for those `Select` blocks.
    pub fn seed_plans(&self, snapshot: &HashMap<usize, Arc<SelectPlan>>) {
        self.seeded
            .borrow_mut()
            .extend(snapshot.iter().map(|(k, v)| (*k, v.clone())));
    }

    /// Zero-copy [`Executor::seed_plans`]: share the whole snapshot map
    /// behind one `Arc` instead of rebuilding it per worker executor.
    fn seed_plans_shared(&self, snapshot: Arc<HashMap<usize, Arc<SelectPlan>>>) {
        *self.seeded_shared.borrow_mut() = Some(snapshot);
    }

    /// The shared-cache handle for a fan-out launched by this executor,
    /// created on first use and pre-seeded with everything this executor
    /// already built. Repeated fan-outs within one statement reuse it.
    fn share_caches(&self) -> Arc<SharedExecCaches<'db>> {
        if let Some(sc) = self.shared_caches.borrow().as_ref() {
            return sc.clone();
        }
        let sc = Arc::new(SharedExecCaches {
            merge: Mutex::new(self.merge_arrays.borrow().clone()),
            hash: Mutex::new(self.hash_builds.borrow().clone()),
        });
        *self.shared_caches.borrow_mut() = Some(sc.clone());
        sc
    }

    /// Attach a sibling fan-out's shared caches (worker side).
    fn attach_shared_caches(&self, sc: Arc<SharedExecCaches<'db>>) {
        *self.shared_caches.borrow_mut() = Some(sc);
    }

    /// The coordinator plan snapshot handed to one fan-out's workers:
    /// current plans plus anything seeded, shared behind one `Arc`.
    fn snapshot_for_workers(&self) -> Arc<HashMap<usize, Arc<SelectPlan>>> {
        let mut s = self.plan_snapshot();
        s.extend(self.seeded.borrow().iter().map(|(k, v)| (*k, v.clone())));
        if let Some(shared) = self.seeded_shared.borrow().as_ref() {
            for (k, v) in shared.iter() {
                s.entry(*k).or_insert_with(|| v.clone());
            }
        }
        Arc::new(s)
    }

    /// Record one fork-or-serial decision for EXPLAIN ANALYZE.
    fn log_par_decision(&self, entry: String) {
        self.par_log.borrow_mut().push(entry);
    }

    /// The `par_decision` entries the current statement recorded, in
    /// decision order (empty when no fan-out site was reached — e.g.
    /// `ForceOff` or a single-thread pool).
    pub fn par_decisions(&self) -> Vec<String> {
        self.par_log.borrow().clone()
    }

    /// Counters accumulated since construction (or the last reset).
    pub fn stats(&self) -> ExecStats {
        *self.stats.borrow()
    }

    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = ExecStats::default();
    }

    /// Parse and run a SQL string.
    pub fn query(&self, sql: &str) -> Result<ResultSet, ExecError> {
        let stmt = crate::parser::parse_sql(sql).map_err(|e| ExecError::parse(e.to_string()))?;
        self.run(&stmt)
    }

    /// Run a statement AST. Limit and cancellation aborts are counted
    /// into [`ExecStats`] here, on the way out.
    pub fn run(&self, stmt: &SelectStmt) -> Result<ResultSet, ExecError> {
        self.rows_charged.set(0);
        self.limit_tick.set(0);
        // Up-front poll so an already-expired deadline or pre-fired token
        // aborts deterministically, even for queries too small to ever
        // reach an in-loop check.
        let result = self.check_limits_now().and_then(|()| self.run_inner(stmt));
        match &result {
            Ok(_) => self.record_plan_qerror(),
            Err(e) => {
                let mut stats = self.stats.borrow_mut();
                match e {
                    ExecError::Limit(_) => stats.limit_aborts += 1,
                    ExecError::Cancelled(_) => stats.query_cancelled += 1,
                    _ => {}
                }
            }
        }
        result
    }

    /// Feed per-step estimation quality into the global registry
    /// histogram `sqlexec.plan_qerror` (fixed-point ×100, so 100 = a
    /// perfect estimate). Per-step counters are always recorded —
    /// profiling only gates timing — so this costs one map walk per
    /// statement. Actual rows-per-invocation is compared against the
    /// planner's `est_rows` for the same step.
    fn record_plan_qerror(&self) {
        let reg = obs::Registry::global();
        for (plan, ops) in self.profiled_steps() {
            for (step, op) in plan.steps.iter().zip(&ops) {
                if op.invocations == 0 {
                    continue;
                }
                let act = op.rows_out as f64 / op.invocations as f64;
                let q = crate::plan::qerror(step.est_rows, act);
                reg.observe("sqlexec.plan_qerror", (q * 100.0) as u64);
            }
        }
    }

    fn run_inner(&self, stmt: &SelectStmt) -> Result<ResultSet, ExecError> {
        self.plans.borrow_mut().clear();
        self.hash_builds.borrow_mut().clear();
        self.merge_cursors.borrow_mut().clear();
        self.step_stats.borrow_mut().clear();
        self.par_log.borrow_mut().clear();
        *self.shared_caches.borrow_mut() = None;
        if stmt.branches.is_empty() {
            return Err(ExecError::exec("statement has no SELECT branch"));
        }
        let multi = stmt.branches.len() > 1;
        // UNION branches must agree on arity, or dedup/sort would index
        // out of bounds across rows of different widths.
        let arity = stmt.branches[0].projections.len();
        if stmt.branches.iter().any(|b| b.projections.len() != arity) {
            return Err(ExecError::exec(
                "UNION branches project different numbers of columns",
            ));
        }

        // Resolve ORDER BY keys. Keys naming an output column sort on the
        // projected value (required for UNION); otherwise the key expression
        // is evaluated against the FROM bindings of the (single) branch.
        let first = &stmt.branches[0];
        let mut keys: Vec<(KeyKind, bool)> = Vec::new();
        for k in &stmt.order_by {
            let kind = match &k.expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } => {
                    let pos = first.projections.iter().position(|p| {
                        p.alias.as_deref() == Some(name.as_str())
                            || matches!(&p.expr, Expr::Column { name: n, .. } if n == name)
                    });
                    match pos {
                        Some(i) => KeyKind::Output(i),
                        None => KeyKind::Computed(k.expr.clone()),
                    }
                }
                other => KeyKind::Computed(other.clone()),
            };
            if multi && matches!(kind, KeyKind::Computed(_)) {
                return Err(ExecError::exec(
                    "ORDER BY over UNION must reference an output column",
                ));
            }
            keys.push((kind, k.desc));
        }

        let mut all_rows: Vec<KeyedRow> = match self.union_rows_parallel(stmt, &keys)? {
            Some(rows) => rows,
            None => {
                let mut all = Vec::new();
                for sel in &stmt.branches {
                    let mut branch_rows = match self.branch_rows_parallel(sel, &keys)? {
                        Some(rows) => rows,
                        None => {
                            let mut env: Vec<Binding> = Vec::new();
                            let mut rows = Vec::new();
                            self.select_rows(sel, &mut env, &mut |exec, env| {
                                rows.push(project_row(exec, sel, &keys, env)?);
                                Ok(true)
                            })?;
                            rows
                        }
                    };
                    if sel.distinct {
                        dedup_rows(&mut branch_rows);
                    }
                    all.extend(branch_rows);
                }
                all
            }
        };
        if multi {
            // UNION has set semantics.
            dedup_rows(&mut all_rows);
        }
        self.sort_keyed_rows(&mut all_rows, &keys)?;

        let columns = first
            .projections
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.alias.clone().unwrap_or_else(|| match &p.expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::CountStar => "count".to_string(),
                    _ => format!("col{i}"),
                })
            })
            .collect();
        Ok(ResultSet {
            columns,
            rows: all_rows.into_iter().map(|(_, r)| r).collect(),
        })
    }

    /// Run the arms of a UNION concurrently, one pool task per arm, each
    /// on its own worker executor (pinned serial — parallelism never
    /// nests) sharing the coordinator's plan snapshot and caches. Arm
    /// outputs concatenate in arm order and worker stats are absorbed
    /// slot-wise, so rows, order, and core counters are byte-identical
    /// to the serial arm loop.
    ///
    /// Returns `None` when the statement has one branch, the mode or
    /// pool rules out fan-out, or the cost model prices the arms below
    /// the fork overhead — the caller then runs the serial loop.
    fn union_rows_parallel(
        &self,
        stmt: &SelectStmt,
        keys: &[(KeyKind, bool)],
    ) -> Result<Option<Vec<KeyedRow>>, ExecError> {
        let arms = stmt.branches.len();
        if arms < 2 {
            return Ok(None);
        }
        let mode = parallel_mode();
        let pool = ppf_pool::global();
        let threads = pool.threads();
        if mode == ParallelMode::ForceOff || threads <= 1 {
            return Ok(None);
        }
        if mode == ParallelMode::Auto && pool.is_saturated() {
            self.stats.borrow_mut().par_degraded += 1;
            return Ok(None);
        }
        self.check_limits_now()?;
        // Plan every arm up front: the planner's estimates drive the
        // decision, and the plans ride to the workers in the snapshot.
        let mut est_work = 0.0f64;
        for sel in &stmt.branches {
            let plan = self.plan_for(sel, &[])?;
            est_work += plan
                .steps
                .iter()
                .map(|s| s.est_fetched.max(1.0))
                .product::<f64>();
        }
        let decision = match mode {
            ParallelMode::ForceOn => par_cost::ParDecision::Fork {
                chunks: arms,
                est_ns: 0.0,
            },
            _ => {
                let d = par_cost::decide(par_cost::WorkKind::Union, est_work, arms, threads);
                self.log_par_decision(par_cost::describe(par_cost::WorkKind::Union, &d));
                d
            }
        };
        if !decision.is_fork() {
            return Ok(None);
        }
        {
            let mut stats = self.stats.borrow_mut();
            stats.par_tasks += 1;
            stats.par_chunks += arms as u64;
        }
        let mm = crate::plan::merge_mode();
        let fc = filter_caches_enabled();
        let profiling = self.profiling.get();
        let snapshot = self.snapshot_for_workers();
        let sc = self.share_caches();
        let db = self.db;
        let limits = self.limits();
        let ranges: Vec<std::ops::Range<usize>> = (0..arms).map(|i| i..i + 1).collect();
        let t0 = Instant::now();
        let parts = pool
            .try_map_ranges(&ranges, |i, _| {
                let t_chunk = Instant::now();
                obs::profile::record(obs::profile::EventKind::ChunkStart, 1);
                let prev_mm = crate::plan::set_merge_mode(mm);
                let prev_fc = set_filter_caches_enabled(fc);
                let prev_pm = set_parallel_mode(ParallelMode::ForceOff);
                let sel = &stmt.branches[i];
                let exec = Executor::new(db);
                exec.seed_plans_shared(snapshot.clone());
                exec.attach_shared_caches(sc.clone());
                exec.set_profiling(profiling);
                exec.set_limits(limits.clone());
                let mut env: Vec<Binding> = Vec::new();
                let mut rows = Vec::new();
                let outcome = exec.select_rows(sel, &mut env, &mut |e, env| {
                    rows.push(project_row(e, sel, keys, env)?);
                    Ok(true)
                });
                if outcome.is_ok() && sel.distinct {
                    // Per-arm DISTINCT is order-insensitive within the
                    // arm, so it can run on the worker.
                    dedup_rows(&mut rows);
                }
                let result = WorkerResult {
                    outcome,
                    rows,
                    count: 0,
                    busy_ns: t_chunk.elapsed().as_nanos() as u64,
                    depth0: OpStats::default(),
                    stats: exec.stats(),
                    step_stats: exec.step_stats.borrow().clone(),
                    plans: exec.plan_snapshot(),
                };
                crate::plan::set_merge_mode(prev_mm);
                set_filter_caches_enabled(prev_fc);
                set_parallel_mode(prev_pm);
                obs::profile::record(obs::profile::EventKind::ChunkEnd, result.rows.len() as u64);
                result
            })
            .map_err(|p| ExecError::exec(format!("parallel UNION arm panicked: {}", p.message)))?;
        let wall = t0.elapsed().as_nanos() as u64;
        let busy: u64 = parts.iter().map(|p| p.busy_ns).sum();
        let mut all = Vec::new();
        let mut first_err: Option<ExecError> = None;
        for part in parts {
            self.stats.borrow_mut().absorb(&part.stats);
            self.absorb_step_stats(&part.step_stats);
            self.absorb_plans(&part.plans);
            if let Err(e) = part.outcome {
                first_err.get_or_insert(e);
            }
            all.extend(part.rows);
        }
        if mode == ParallelMode::Auto {
            par_cost::note_fork(busy, wall, threads);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(Some(all)),
        }
    }

    /// Final ORDER BY: a stable parallel merge sort over the collected
    /// rows. Chunks are stable-sorted in place on the pool, then merged
    /// left-first, which reproduces the serial stable `sort_by` order
    /// byte for byte. Serial (and a no-op for keyless statements) when
    /// the mode, pool, or cost model says the fan-out won't pay.
    fn sort_keyed_rows(
        &self,
        rows: &mut Vec<KeyedRow>,
        keys: &[(KeyKind, bool)],
    ) -> Result<(), ExecError> {
        if keys.is_empty() || rows.len() < 2 {
            return Ok(());
        }
        let n = rows.len();
        let mode = parallel_mode();
        let pool = ppf_pool::global();
        let threads = pool.threads();
        // Comparison count of a merge sort: n·log₂n.
        let work = (n as f64) * (n as f64).log2().max(1.0);
        let mut decision = par_cost::ParDecision::Serial("off");
        match mode {
            ParallelMode::ForceOff => {}
            ParallelMode::ForceOn => {
                if threads > 1 {
                    decision = par_cost::ParDecision::Fork {
                        chunks: force_on_chunks(n, threads),
                        est_ns: 0.0,
                    };
                }
            }
            ParallelMode::Auto => {
                if threads > 1 {
                    if pool.is_saturated() {
                        self.stats.borrow_mut().par_degraded += 1;
                    } else {
                        decision = par_cost::decide(par_cost::WorkKind::Sort, work, n, threads);
                        self.log_par_decision(par_cost::describe(
                            par_cost::WorkKind::Sort,
                            &decision,
                        ));
                    }
                }
            }
        }
        let par_cost::ParDecision::Fork { chunks, .. } = decision else {
            let t0 = (mode == ParallelMode::Auto && threads > 1).then(Instant::now);
            rows.sort_by(|a, b| cmp_keyed(keys, a, b));
            if let Some(t0) = t0 {
                par_cost::note_serial(
                    par_cost::WorkKind::Sort,
                    work,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            return Ok(());
        };
        self.check_limits_now()?;
        let ranges = ppf_pool::even_ranges(n, chunks);
        {
            let mut stats = self.stats.borrow_mut();
            stats.par_tasks += 1;
            stats.par_chunks += ranges.len() as u64;
        }
        let t0 = Instant::now();
        let busy = std::sync::atomic::AtomicU64::new(0);
        {
            // Carve the buffer into disjoint &mut chunks and stable-sort
            // each on the pool.
            let mut rest: &mut [KeyedRow] = &mut rows[..];
            let mut slices: Vec<&mut [KeyedRow]> = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                slices.push(head);
                rest = tail;
            }
            let busy = &busy;
            pool.try_scope(|s| {
                let tasks: Vec<_> = slices
                    .into_iter()
                    .map(|slice| {
                        move || {
                            let t_chunk = Instant::now();
                            obs::profile::record(
                                obs::profile::EventKind::ChunkStart,
                                slice.len() as u64,
                            );
                            slice.sort_by(|a, b| cmp_keyed(keys, a, b));
                            obs::profile::record(
                                obs::profile::EventKind::ChunkEnd,
                                slice.len() as u64,
                            );
                            busy.fetch_add(t_chunk.elapsed().as_nanos() as u64, Relaxed);
                        }
                    })
                    .collect();
                s.spawn_batch(tasks);
            })
            .map_err(|p| {
                ExecError::exec(format!("parallel sort worker panicked: {}", p.message))
            })?;
        }
        let t_merge = Instant::now();
        // Stable left-first k-way merge: on ties the leftmost chunk wins,
        // which is exactly the serial stable sort's tie-break.
        let mut out = Vec::with_capacity(n);
        let mut pos: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        loop {
            let mut best: Option<usize> = None;
            for (k, r) in ranges.iter().enumerate() {
                if pos[k] < r.end {
                    best = match best {
                        None => Some(k),
                        Some(b)
                            if cmp_keyed(keys, &rows[pos[k]], &rows[pos[b]])
                                == std::cmp::Ordering::Less =>
                        {
                            Some(k)
                        }
                        other => other,
                    };
                }
            }
            let Some(b) = best else { break };
            out.push(std::mem::take(&mut rows[pos[b]]));
            pos[b] += 1;
        }
        *rows = out;
        if mode == ParallelMode::Auto {
            // The serial merge is work the parallel path does too: count
            // it on both sides of the work/span ratio.
            let merge_ns = t_merge.elapsed().as_nanos() as u64;
            par_cost::note_fork(
                busy.load(Relaxed) + merge_ns,
                t0.elapsed().as_nanos() as u64,
                threads,
            );
        }
        Ok(())
    }

    /// Partitioned execution of one top-level branch: fill the first
    /// step's candidate rows once, split the run at Dewey-aligned
    /// boundaries, and drive the remaining pipeline over each slice on a
    /// pool worker with its own `Executor`. Chunk outputs concatenate in
    /// range order, so the result is the serial emission order exactly.
    ///
    /// Returns `None` when this branch should take the serial path — the
    /// mode is `ForceOff`, the pool has one thread, the projection is an
    /// aggregate, or the plan has no steps. `PPF_THREADS=1` therefore
    /// reproduces the pre-parallel engine byte for byte.
    fn branch_rows_parallel(
        &self,
        sel: &Select,
        keys: &[(KeyKind, bool)],
    ) -> Result<Option<Vec<KeyedRow>>, ExecError> {
        let mode = parallel_mode();
        let pool = ppf_pool::global();
        if mode == ParallelMode::ForceOff || pool.threads() <= 1 {
            return Ok(None);
        }
        if mode == ParallelMode::Auto && pool.is_saturated() {
            // Every worker is already inside a scope for some other query;
            // fanning out now would only queue behind them. Degrade this
            // query to the serial path and record that we did.
            self.stats.borrow_mut().par_degraded += 1;
            return Ok(None);
        }
        self.check_limits_now()?;
        let is_count = sel
            .projections
            .iter()
            .any(|p| matches!(p.expr, Expr::CountStar));
        if is_count && sel.projections.len() != 1 {
            // Mixed COUNT(*)/column projections are a statement error; the
            // serial path owns raising it.
            return Ok(None);
        }
        let plan = self.plan_for(sel, &[])?;
        if plan.steps.is_empty() {
            return Ok(None);
        }
        let step0 = &plan.steps[0];
        let table = self
            .db
            .table(&step0.table)
            .ok_or_else(|| ExecError::exec(format!("no such table `{}`", step0.table)))?;

        let t0 = self.profiling.get().then(std::time::Instant::now);
        let mut fill_local = OpStats {
            invocations: 1,
            ..OpStats::default()
        };
        let mut env: Vec<Binding<'db>> = Vec::new();
        let mut probe_rows = self.take_row_buf();
        let memo_skip = match self.fill_probe_rows(
            step0,
            table,
            sel,
            0,
            &mut env,
            &mut fill_local,
            &mut probe_rows,
        ) {
            Ok(skip) => skip,
            Err(e) => {
                self.put_row_buf(probe_rows);
                return Err(e);
            }
        };

        let n = probe_rows.len();
        let threads = pool.threads();
        // Downstream traffic estimate: each outer row drives the planner's
        // expected fetch fan-out through the remaining steps.
        let fanout: f64 = plan.steps[1..]
            .iter()
            .map(|s| s.est_fetched.max(1.0))
            .product();
        let work = (n as f64) * fanout;
        let decision = match mode {
            ParallelMode::ForceOn if n >= 2 => par_cost::ParDecision::Fork {
                chunks: force_on_chunks(n, threads),
                est_ns: 0.0,
            },
            ParallelMode::ForceOn => par_cost::ParDecision::Serial("tiny"),
            _ => {
                let d = par_cost::decide(par_cost::WorkKind::Branch, work, n, threads);
                self.log_par_decision(par_cost::describe(par_cost::WorkKind::Branch, &d));
                d
            }
        };
        let mut ranges = match decision {
            par_cost::ParDecision::Fork { chunks, .. } => ppf_pool::even_ranges(n, chunks),
            par_cost::ParDecision::Serial(_) => Vec::new(),
        };
        if ranges.len() > 1 {
            align_ranges_to_dewey(table, &probe_rows, &mut ranges);
        }

        if ranges.len() <= 1 {
            // Not worth (or not able to) split: finish serially over the
            // rows already fetched, accumulating into the same step slot.
            // The wall time feeds the cost model so future Auto decisions
            // price this operator from observed per-row cost.
            let t_serial =
                (mode == ParallelMode::Auto && threads > 1).then(std::time::Instant::now);
            let mut rows = Vec::new();
            let mut count: i64 = 0;
            let outcome = if is_count {
                self.run_probe_rows(
                    &plan,
                    0,
                    sel,
                    &mut env,
                    table,
                    &probe_rows,
                    memo_skip,
                    &mut |_, _| {
                        count += 1;
                        Ok(true)
                    },
                    &mut fill_local,
                )
            } else {
                self.run_probe_rows(
                    &plan,
                    0,
                    sel,
                    &mut env,
                    table,
                    &probe_rows,
                    memo_skip,
                    &mut |exec, env| {
                        rows.push(project_row(exec, sel, keys, env)?);
                        Ok(true)
                    },
                    &mut fill_local,
                )
            };
            self.put_row_buf(probe_rows);
            if let Some(t) = t_serial {
                par_cost::note_serial(
                    par_cost::WorkKind::Branch,
                    work,
                    t.elapsed().as_nanos() as u64,
                );
            }
            if let Some(t0) = t0 {
                fill_local.elapsed_ns = t0.elapsed().as_nanos() as u64;
            }
            self.flush_depth0(sel, &plan, &fill_local);
            outcome?;
            if is_count {
                self.count_result.set(Some(count));
                let mut env2: Vec<Binding> = Vec::new();
                let row = project_row(self, sel, keys, &mut env2);
                self.count_result.set(None);
                return Ok(Some(vec![row?]));
            }
            return Ok(Some(rows));
        }
        {
            let mut stats = self.stats.borrow_mut();
            stats.par_tasks += 1;
            stats.par_chunks += ranges.len() as u64;
            stats.par_rows += ranges.iter().map(|r| r.len() as u64).sum::<u64>();
            let widest = ranges.iter().map(|r| r.len() as u64).max().unwrap_or(0);
            stats.par_chunk_rows_max = stats.par_chunk_rows_max.max(widest);
        }
        // Workers run on pool threads *and* on this one (the coordinator
        // helps drain the queue), so every thread-local the pipeline
        // consults is captured here and restored on exit from each task.
        let mm = crate::plan::merge_mode();
        let fc = filter_caches_enabled();
        let profiling = self.profiling.get();
        let snapshot = self.snapshot_for_workers();
        let sc = self.share_caches();
        let db = self.db;
        let plan_ref = &plan;
        let rows_ref = &probe_rows[..];
        let limits = self.limits();
        let t_fork = std::time::Instant::now();
        let parts = pool.try_map_ranges(&ranges, |_, range| {
            if test_hooks::take_worker_panic() {
                panic!("injected worker panic (test hook)");
            }
            let t_chunk = std::time::Instant::now();
            obs::profile::record(obs::profile::EventKind::ChunkStart, range.len() as u64);
            let prev_mm = crate::plan::set_merge_mode(mm);
            let prev_fc = set_filter_caches_enabled(fc);
            let prev_pm = set_parallel_mode(ParallelMode::ForceOff);
            let exec = Executor::new(db);
            exec.seed_plans_shared(snapshot.clone());
            exec.attach_shared_caches(sc.clone());
            exec.set_profiling(profiling);
            exec.set_limits(limits.clone());
            let mut env: Vec<Binding> = Vec::new();
            let mut rows = Vec::new();
            let mut count: i64 = 0;
            let mut depth0 = OpStats::default(); // invocations stay the coordinator's
            let outcome = if is_count {
                exec.run_probe_rows(
                    plan_ref,
                    0,
                    sel,
                    &mut env,
                    table,
                    &rows_ref[range],
                    memo_skip,
                    &mut |_, _| {
                        count += 1;
                        Ok(true)
                    },
                    &mut depth0,
                )
                .map(|_| ())
            } else {
                exec.run_probe_rows(
                    plan_ref,
                    0,
                    sel,
                    &mut env,
                    table,
                    &rows_ref[range],
                    memo_skip,
                    &mut |e, env| {
                        rows.push(project_row(e, sel, keys, env)?);
                        Ok(true)
                    },
                    &mut depth0,
                )
                .map(|_| ())
            };
            let result = WorkerResult {
                outcome,
                rows,
                count,
                busy_ns: t_chunk.elapsed().as_nanos() as u64,
                depth0,
                stats: exec.stats(),
                step_stats: exec.step_stats.borrow().clone(),
                plans: exec.plan_snapshot(),
            };
            crate::plan::set_merge_mode(prev_mm);
            set_filter_caches_enabled(prev_fc);
            set_parallel_mode(prev_pm);
            obs::profile::record(obs::profile::EventKind::ChunkEnd, result.rows.len() as u64);
            result
        });
        self.put_row_buf(probe_rows);
        let parts: Vec<WorkerResult> = parts
            .map_err(|p| ExecError::exec(format!("parallel worker panicked: {}", p.message)))?;
        if mode == ParallelMode::Auto {
            let busy: u64 = parts.iter().map(|p| p.busy_ns).sum();
            par_cost::note_fork(busy, t_fork.elapsed().as_nanos() as u64, threads);
        }

        let mut rows = Vec::new();
        let mut total_count: i64 = 0;
        let mut first_err: Option<ExecError> = None;
        for part in parts {
            fill_local.absorb(&part.depth0);
            self.stats.borrow_mut().absorb(&part.stats);
            self.absorb_step_stats(&part.step_stats);
            self.absorb_plans(&part.plans);
            if let Err(e) = part.outcome {
                first_err.get_or_insert(e);
            }
            total_count += part.count;
            rows.extend(part.rows);
        }
        if let Some(t0) = t0 {
            fill_local.elapsed_ns = t0.elapsed().as_nanos() as u64;
        }
        self.flush_depth0(sel, &plan, &fill_local);
        if let Some(e) = first_err {
            return Err(e);
        }
        if is_count {
            // Combine the per-chunk partial counts and evaluate the single
            // COUNT(*) projection once, exactly like the serial funnel.
            self.count_result.set(Some(total_count));
            let mut env2: Vec<Binding> = Vec::new();
            let row = project_row(self, sel, keys, &mut env2);
            self.count_result.set(None);
            return Ok(Some(vec![row?]));
        }
        Ok(Some(rows))
    }

    /// Credit the coordinator-side depth-0 counters (candidate fill plus
    /// any serial completion) to the step-stats slot and the global
    /// counters, exactly as [`Self::exec_steps`] does on the serial path.
    fn flush_depth0(&self, sel: &Select, plan: &SelectPlan, local: &OpStats) {
        {
            let mut map = self.step_stats.borrow_mut();
            let slots = map
                .entry(sel as *const Select as usize)
                .or_insert_with(|| vec![OpStats::default(); plan.steps.len()]);
            slots[0].absorb(local);
        }
        let mut stats = self.stats.borrow_mut();
        stats.rows_scanned += local.rows_in;
        stats.index_probes += local.index_probes;
        stats.predicate_evals += local.predicate_evals;
    }

    /// Merge a partition worker's per-step counters into this executor's
    /// (slot-wise; the worker profiled the same shared plans, so `Select`
    /// addresses line up).
    fn absorb_step_stats(&self, other: &HashMap<usize, Vec<OpStats>>) {
        let mut map = self.step_stats.borrow_mut();
        for (key, ops) in other {
            let slots = map
                .entry(*key)
                .or_insert_with(|| vec![OpStats::default(); ops.len()]);
            for (slot, op) in slots.iter_mut().zip(ops) {
                slot.absorb(op);
            }
        }
    }

    /// Adopt plans a worker cached (subquery blocks the coordinator never
    /// planned itself), so `EXPLAIN ANALYZE` can render every profiled
    /// block.
    fn absorb_plans(&self, other: &HashMap<usize, Arc<SelectPlan>>) {
        let mut map = self.plans.borrow_mut();
        for (key, plan) in other {
            map.entry(*key).or_insert_with(|| plan.clone());
        }
    }

    /// Run one select block, calling `emit` per surviving binding (or once
    /// with the aggregate when the projection is `COUNT(*)`).
    /// `emit` returns `false` to stop early (EXISTS).
    fn select_rows<'e>(
        &'e self,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
    ) -> Result<(), ExecError>
    where
        'db: 'e,
    {
        let is_count = sel
            .projections
            .iter()
            .any(|p| matches!(p.expr, Expr::CountStar));
        if is_count && sel.projections.len() != 1 {
            return Err(ExecError::exec("COUNT(*) must be the only projection"));
        }

        let plan = self.plan_for(sel, env)?;
        if is_count {
            let mut count: i64 = 0;
            self.exec_steps(&plan, 0, sel, env, &mut |_, _| {
                count += 1;
                Ok(true)
            })?;
            // Deliver the count through a one-off binding-free emit: the
            // caller reads it via `eval(CountStar)` — we stash it.
            self.count_result.set(Some(count));
            emit(self, env)?;
            self.count_result.set(None);
            return Ok(());
        }
        self.exec_steps(&plan, 0, sel, env, emit)?;
        Ok(())
    }

    fn plan_for(&self, sel: &Select, env: &[Binding<'db>]) -> Result<Arc<SelectPlan>, ExecError> {
        let key = sel as *const Select as usize;
        if let Some(p) = self.plans.borrow().get(&key) {
            return Ok(p.clone());
        }
        if let Some(p) = self.seeded.borrow().get(&key) {
            self.plans.borrow_mut().insert(key, p.clone());
            return Ok(p.clone());
        }
        if let Some(shared) = self.seeded_shared.borrow().as_ref() {
            if let Some(p) = shared.get(&key) {
                self.plans.borrow_mut().insert(key, p.clone());
                return Ok(p.clone());
            }
        }
        let outer: Vec<(String, String)> = env
            .iter()
            .map(|b| (b.alias.to_string(), b.table.schema.name.clone()))
            .collect();
        let plan = Arc::new(plan_select(self.db, sel, &outer)?);
        self.plans.borrow_mut().insert(key, plan.clone());
        Ok(plan)
    }

    /// Wrapper around [`Self::exec_steps_inner`] that flushes this step's
    /// counters into `step_stats` and the global `ExecStats` on *every*
    /// exit path — including errors, which previously dropped the counts
    /// accumulated before the failure (the EXISTS/scalar-subquery
    /// undercount).
    fn exec_steps<'e>(
        &'e self,
        plan: &SelectPlan,
        depth: usize,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
    ) -> Result<bool, ExecError> {
        if depth == plan.steps.len() {
            if !plan.late_filters.is_empty() {
                let mut evals = 0u64;
                let mut pass = true;
                for f in &plan.late_filters {
                    evals += 1;
                    match self.eval_truth(f, env) {
                        Ok(Some(true)) => {}
                        Ok(_) => {
                            pass = false;
                            break;
                        }
                        Err(e) => {
                            self.stats.borrow_mut().predicate_evals += evals;
                            return Err(e);
                        }
                    }
                }
                self.stats.borrow_mut().predicate_evals += evals;
                if !pass {
                    return Ok(true);
                }
            }
            return emit(self, env);
        }

        let t0 = self.profiling.get().then(std::time::Instant::now);
        let mut local = OpStats {
            invocations: 1,
            ..OpStats::default()
        };
        let result = self.exec_steps_inner(plan, depth, sel, env, emit, &mut local);
        if let Some(t0) = t0 {
            local.elapsed_ns = t0.elapsed().as_nanos() as u64;
        }
        {
            let mut map = self.step_stats.borrow_mut();
            let slots = map
                .entry(sel as *const Select as usize)
                .or_insert_with(|| vec![OpStats::default(); plan.steps.len()]);
            slots[depth].absorb(&local);
        }
        {
            let mut stats = self.stats.borrow_mut();
            stats.rows_scanned += local.rows_in;
            stats.index_probes += local.index_probes;
            stats.predicate_evals += local.predicate_evals;
        }
        result
    }

    fn exec_steps_inner<'e>(
        &'e self,
        plan: &SelectPlan,
        depth: usize,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
        local: &mut OpStats,
    ) -> Result<bool, ExecError> {
        let step = &plan.steps[depth];
        let table = self
            .db
            .table(&step.table)
            .ok_or_else(|| ExecError::exec(format!("no such table `{}`", step.table)))?;

        // Materialize candidate row ids from the access path into a
        // pooled buffer (returned to the pool on every exit path below).
        let mut probe_rows = self.take_row_buf();
        let memo_skip =
            match self.fill_probe_rows(step, table, sel, depth, env, local, &mut probe_rows) {
                Ok(skip) => skip,
                Err(e) => {
                    self.put_row_buf(probe_rows);
                    return Err(e);
                }
            };

        let outcome = self.run_probe_rows(
            plan,
            depth,
            sel,
            env,
            table,
            &probe_rows,
            memo_skip,
            emit,
            local,
        );
        self.put_row_buf(probe_rows);
        outcome
    }

    /// The nested-loop row loop for one step invocation, over an
    /// already-materialized candidate list. Shared by the serial pipeline
    /// ([`Self::exec_steps_inner`]) and by partition workers, which run it
    /// over disjoint slices of the coordinator's outer run.
    #[allow(clippy::too_many_arguments)]
    fn run_probe_rows<'e>(
        &'e self,
        plan: &SelectPlan,
        depth: usize,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        table: &'db Table,
        probe_rows: &[RowId],
        memo_skip: Option<usize>,
        emit: &mut EmitFn<'_, 'db>,
        local: &mut OpStats,
    ) -> Result<bool, ExecError> {
        let step = &plan.steps[depth];
        let mut outcome = Ok(true);
        'rows: for &rid in probe_rows {
            local.rows_in += 1;
            if let Err(e) = self.charge_rows(1) {
                outcome = Err(e);
                break 'rows;
            }
            env.push(Binding {
                alias: step.alias.clone(),
                table,
                rid,
            });
            let mut pass = true;
            for (ri, r) in step.residuals.iter().enumerate() {
                if memo_skip == Some(ri) {
                    continue; // already answered by the path-filter memo
                }
                local.predicate_evals += 1;
                match self.eval_truth(r, env) {
                    Ok(Some(true)) => {}
                    Ok(_) => {
                        pass = false;
                        break;
                    }
                    Err(e) => {
                        env.pop();
                        outcome = Err(e);
                        break 'rows;
                    }
                }
            }
            let keep_going = if pass {
                local.rows_out += 1;
                match self.exec_steps(plan, depth + 1, sel, env, emit) {
                    Ok(k) => k,
                    Err(e) => {
                        env.pop();
                        outcome = Err(e);
                        break 'rows;
                    }
                }
            } else {
                true
            };
            env.pop();
            if !keep_going {
                outcome = Ok(false);
                break 'rows;
            }
        }
        outcome
    }

    /// Materialize the candidate rows for one step invocation. Returns
    /// the index of a residual already answered by the path-filter memo
    /// (so the row loop skips it), if any.
    #[allow(clippy::too_many_arguments)]
    fn fill_probe_rows(
        &self,
        step: &Step,
        table: &'db Table,
        sel: &Select,
        depth: usize,
        env: &mut Vec<Binding<'db>>,
        local: &mut OpStats,
        probe_rows: &mut Vec<RowId>,
    ) -> Result<Option<usize>, ExecError> {
        match &step.access {
            Access::FullScan => {
                if let Some(skip) = self.probe_path_memo(step, table, local, probe_rows)? {
                    return Ok(Some(skip));
                }
                probe_rows.extend(table.rows().map(|(rid, _)| rid));
            }
            Access::HashEq { column, key } => {
                let build = self.hash_build(&step.table, table, *column)?;
                // A cold build just scanned the whole table; poll before
                // the probe rather than mid-scan.
                self.check_limits_now()?;
                let k = self.eval(key, env)?;
                // A NULL key matches nothing; no probe is performed.
                if !k.is_null() {
                    local.index_probes += 1;
                    if let Some(rids) = build.get(&k) {
                        probe_rows.extend_from_slice(rids);
                    }
                }
            }
            Access::IndexEq { index, keys } => {
                // Probe through the reusable scratch key buffer instead
                // of a fresh Vec<Value> per probe.
                let mut key_vals = self.key_scratch.take();
                key_vals.clear();
                if key_vals.capacity() < keys.len() {
                    self.stats.borrow_mut().probe_allocs += 1;
                }
                let mut any_null = false;
                for k in keys {
                    let v = match self.eval(k, env) {
                        Ok(v) => v,
                        Err(e) => {
                            key_vals.clear();
                            self.key_scratch.replace(key_vals);
                            return Err(e);
                        }
                    };
                    if v.is_null() {
                        any_null = true;
                        break;
                    }
                    key_vals.push(v);
                }
                if !any_null {
                    local.index_probes += 1;
                    probe_rows.extend_from_slice(table.indexes()[*index].get(&key_vals));
                }
                key_vals.clear();
                self.key_scratch.replace(key_vals);
            }
            Access::IndexRange { index, lo, hi } => {
                let ix = &table.indexes()[*index];
                if let Some((lo_v, hi_v)) =
                    self.prepare_bounds(lo, hi, ix.key_cols.len() > 1, env)?
                {
                    local.index_probes += 1;
                    probe_rows.extend(ix.range(bound_of(&lo_v), bound_of(&hi_v)));
                }
            }
            Access::MergeRange { index, lo, hi } => {
                let ix = &table.indexes()[*index];
                if let Some((lo_v, hi_v)) =
                    self.prepare_bounds(lo, hi, ix.key_cols.len() > 1, env)?
                {
                    local.index_probes += 1;
                    self.stats.borrow_mut().merge_probes += 1;
                    let entries = self.merge_entries(&step.table, table, *index);
                    let ckey = (sel as *const Select as usize, depth);
                    let hint = self.merge_cursors.borrow().get(&ckey).copied().unwrap_or(0);
                    let start = seek_first(&entries, hint, &lo_v);
                    self.merge_cursors.borrow_mut().insert(ckey, start);
                    for (k, rids) in &entries[start..] {
                        if !within_hi(k, &hi_v) {
                            break;
                        }
                        probe_rows.extend_from_slice(rids);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Evaluate range endpoint expressions against the current bindings.
    /// Returns `None` when the probe selects nothing (a NULL bound, or an
    /// inverted interval — which `BTreeMap::range` would panic on). For
    /// composite indexes an inclusive upper bound on the leading column
    /// is widened to cover key suffixes: scan up to (but excluding) the
    /// successor of the bound value; if no successor exists, fall back to
    /// unbounded — the driving conjuncts are re-checked as residuals, so
    /// a superset is always safe.
    fn prepare_bounds(
        &self,
        lo: &Option<(Expr, bool)>,
        hi: &Option<(Expr, bool)>,
        composite: bool,
        env: &mut Vec<Binding<'db>>,
    ) -> Result<Option<(RangeEnd, RangeEnd)>, ExecError> {
        let lo_v: RangeEnd = match lo {
            Some((e, inc)) => {
                let v = self.eval(e, env)?;
                if v.is_null() {
                    return Ok(None); // comparison with NULL selects nothing
                }
                Some((v, *inc))
            }
            None => None,
        };
        let hi_v: RangeEnd = match hi {
            Some((e, inc)) => {
                let v = self.eval(e, env)?;
                if v.is_null() {
                    return Ok(None);
                }
                Some((v, *inc))
            }
            None => None,
        };
        if let (Some((l, l_inc)), Some((h, h_inc))) = (&lo_v, &hi_v) {
            match l.cmp_total(h) {
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Equal if !(*l_inc && *h_inc) => return Ok(None),
                _ => {}
            }
        }
        let hi_v = match hi_v {
            Some((v, true)) if composite => value_successor(&v).map(|s| (s, false)),
            other => other,
        };
        Ok(Some((lo_v, hi_v)))
    }

    /// Flatten (and cache) an index as a sorted array for merge probing.
    /// Under a shared fan-out cache the flattening happens once per
    /// statement across all sibling executors instead of once per chunk
    /// — the dominant per-chunk setup cost the profiler flagged.
    fn merge_entries(
        &self,
        table_name: &str,
        table: &'db Table,
        index: usize,
    ) -> MergeEntries<'db> {
        let key = (table_name.to_string(), index);
        if let Some(e) = self.merge_arrays.borrow().get(&key) {
            return e.clone();
        }
        let shared = self.shared_caches.borrow().clone();
        if let Some(sc) = shared {
            let mut map = lock_cache(&sc.merge);
            let rc = match map.get(&key) {
                Some(e) => e.clone(),
                None => {
                    let rc: MergeEntries<'db> =
                        Arc::new(table.indexes()[index].entries().collect::<Vec<_>>());
                    map.insert(key.clone(), rc.clone());
                    rc
                }
            };
            drop(map);
            self.merge_arrays.borrow_mut().insert(key, rc.clone());
            return rc;
        }
        let entries: Vec<_> = table.indexes()[index].entries().collect();
        let rc = Arc::new(entries);
        self.merge_arrays.borrow_mut().insert(key, rc.clone());
        rc
    }

    /// Try to answer a full scan whose residuals include
    /// `REGEXP_LIKE(<this step's text column>, pattern)` from the
    /// path-filter memo. On a hit `probe_rows` receives the surviving
    /// rows without touching the table; on a miss the filtering scan runs
    /// here (once) and populates the memo. Either way the matched
    /// residual's index is returned so the row loop skips re-evaluating
    /// it. `None` when no residual qualifies — the plain full scan runs.
    fn probe_path_memo(
        &self,
        step: &Step,
        table: &'db Table,
        local: &mut OpStats,
        probe_rows: &mut Vec<RowId>,
    ) -> Result<Option<usize>, ExecError> {
        if !filter_caches_enabled() {
            return Ok(None);
        }
        let mut found: Option<(usize, usize, &str)> = None;
        for (ri, r) in step.residuals.iter().enumerate() {
            if let Expr::RegexpLike { subject, pattern } = r {
                if let Expr::Column { qualifier, name } = &**subject {
                    // The subject must resolve to this step's binding: an
                    // explicit alias match, or unqualified (the innermost
                    // binding wins at lookup time).
                    let aliased = match qualifier {
                        Some(q) => *q == *step.alias,
                        None => true,
                    };
                    if !aliased {
                        continue;
                    }
                    if let Some(ci) = table.schema.col(name) {
                        if table.schema.columns[ci].ty == relstore::ColType::Str {
                            found = Some((ri, ci, pattern));
                            break;
                        }
                    }
                }
            }
        }
        let Some((ri, ci, pattern)) = found else {
            return Ok(None);
        };
        let key: PathMemoKey = (table.uid(), table.version(), ci, pattern.to_string());
        if let Some(rows) = path_memo().get(&key) {
            self.stats.borrow_mut().path_memo_hits += 1;
            probe_rows.extend_from_slice(&rows);
            return Ok(Some(ri));
        }
        self.stats.borrow_mut().path_memo_misses += 1;
        let re = self.cached_regex(pattern)?;
        let survivors = self.filter_scan(table, ci, &re)?;
        // Rejected rows were examined here and never reach the row loop;
        // count them now so rows_in still totals the full scan, and
        // charge one predicate evaluation per row scanned.
        local.rows_in += (table.len() - survivors.len()) as u64;
        local.predicate_evals += table.len() as u64;
        // The observed survivor ratio is the ground truth the planner's
        // regex selectivity guess was standing in for — feed it back.
        crate::plan::note_regex_selectivity(
            pattern,
            survivors.len() as f64 / table.len().max(1) as f64,
        );
        probe_rows.extend_from_slice(&survivors);
        path_memo().insert(key, Arc::new(survivors));
        Ok(Some(ri))
    }

    /// Run one path-filter scan — every row of `table` against `re` —
    /// partitioned across the pool when the table is large enough (all
    /// workers share the one compiled program and its lazy DFA), serially
    /// otherwise. Chunk results concatenate in chunk order, so the
    /// surviving row ids come back in document order either way.
    fn filter_scan(
        &self,
        table: &'db Table,
        ci: usize,
        re: &Arc<Regex>,
    ) -> Result<Vec<RowId>, ExecError> {
        let pool = ppf_pool::global();
        let len = table.len();
        let mode = parallel_mode();
        let threads = pool.threads();
        let mut decision = par_cost::ParDecision::Serial("off");
        match mode {
            ParallelMode::ForceOff => {}
            ParallelMode::ForceOn => {
                if threads > 1 && len >= 2 {
                    decision = par_cost::ParDecision::Fork {
                        chunks: force_on_chunks(len, threads),
                        est_ns: 0.0,
                    };
                }
            }
            ParallelMode::Auto => {
                if threads > 1 {
                    if pool.is_saturated() {
                        self.stats.borrow_mut().par_degraded += 1;
                    } else {
                        decision = par_cost::decide(
                            par_cost::WorkKind::FilterScan,
                            len as f64,
                            len,
                            threads,
                        );
                        self.log_par_decision(par_cost::describe(
                            par_cost::WorkKind::FilterScan,
                            &decision,
                        ));
                    }
                }
            }
        }
        let par_cost::ParDecision::Fork { chunks, .. } = decision else {
            let t0 = (mode == ParallelMode::Auto && threads > 1).then(std::time::Instant::now);
            let mut out = Vec::new();
            for (rid, row) in table.rows() {
                self.charge_rows(1)?;
                // NULLs never match (three-valued logic rejects the row).
                if let Value::Str(s) = &row[ci] {
                    if re.is_match(s) {
                        out.push(rid);
                    }
                }
            }
            if let Some(t0) = t0 {
                par_cost::note_serial(
                    par_cost::WorkKind::FilterScan,
                    len as f64,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            return Ok(out);
        };
        let ranges = ppf_pool::even_ranges(len, chunks);
        {
            let mut stats = self.stats.borrow_mut();
            stats.par_tasks += 1;
            stats.par_chunks += ranges.len() as u64;
            stats.par_rows += ranges.iter().map(|r| r.len() as u64).sum::<u64>();
            let widest = ranges.iter().map(|r| r.len() as u64).max().unwrap_or(0);
            stats.par_chunk_rows_max = stats.par_chunk_rows_max.max(widest);
        }
        let limits = self.limits();
        let busy = std::sync::atomic::AtomicU64::new(0);
        let t_fork = std::time::Instant::now();
        let parts = pool
            .try_map_ranges(&ranges, |_, range| {
                // Chunk-boundary poll; the row budget stays coordinator-side
                // (charged on the concatenated total below).
                limits.check_interrupt()?;
                let t_chunk = std::time::Instant::now();
                obs::profile::record(obs::profile::EventKind::ChunkStart, range.len() as u64);
                let mut out = Vec::new();
                for rid in range {
                    if let Value::Str(s) = &table.row(rid)[ci] {
                        if re.is_match(s) {
                            out.push(rid);
                        }
                    }
                }
                obs::profile::record(obs::profile::EventKind::ChunkEnd, out.len() as u64);
                busy.fetch_add(t_chunk.elapsed().as_nanos() as u64, Relaxed);
                Ok::<_, ExecError>(out)
            })
            .map_err(|p| {
                ExecError::exec(format!(
                    "parallel filter-scan worker panicked: {}",
                    p.message
                ))
            })?;
        if mode == ParallelMode::Auto {
            par_cost::note_fork(
                busy.load(Relaxed),
                t_fork.elapsed().as_nanos() as u64,
                threads,
            );
        }
        let mut survivors = Vec::new();
        for part in parts {
            survivors.extend(part?);
        }
        self.charge_rows(len as u64)?;
        Ok(survivors)
    }

    /// Fetch (or compile into) the process-wide program cache.
    fn cached_regex(&self, pattern: &str) -> Result<Arc<Regex>, ExecError> {
        if filter_caches_enabled() {
            if let Some(r) = regex_cache().get(pattern) {
                return Ok(r);
            }
        }
        let compiled = Regex::new(pattern)
            .map_err(|e| ExecError::exec(format!("bad regex `{pattern}`: {e}")))?;
        let rc = Arc::new(compiled);
        if filter_caches_enabled() {
            regex_cache().insert(pattern.to_string(), rc.clone());
        }
        Ok(rc)
    }

    fn take_row_buf(&self) -> Vec<RowId> {
        match self.row_buf_pool.borrow_mut().pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.stats.borrow_mut().probe_allocs += 1;
                Vec::new()
            }
        }
    }

    fn put_row_buf(&self, buf: Vec<RowId>) {
        let mut pool = self.row_buf_pool.borrow_mut();
        if pool.len() < 64 {
            pool.push(buf);
        }
    }

    /// Build (or fetch the cached) hash-join build side for a column.
    ///
    /// With a shared cache attached (partitioned fan-out), the shared
    /// map's lock is held *across* the build so exactly one sibling
    /// builds — and charges `rows_scanned` for — each side; everyone
    /// else gets the cached `Arc`. That keeps the core counters
    /// byte-identical to the serial single-executor run.
    fn hash_build(
        &self,
        table_name: &str,
        table: &'db Table,
        column: usize,
    ) -> Result<HashBuild, ExecError> {
        let key = (table_name.to_string(), column);
        if let Some(b) = self.hash_builds.borrow().get(&key) {
            return Ok(b.clone());
        }
        let shared = self.shared_caches.borrow().clone();
        if let Some(sc) = shared {
            let mut map = lock_cache(&sc.hash);
            let rc = match map.get(&key) {
                Some(b) => b.clone(),
                None => {
                    // Build serially while holding the lock: forking here
                    // would let the coordinator help-drain foreign tasks
                    // that want another statement's cache lock — a cycle.
                    // Sibling chunk workers are pinned serial anyway.
                    let prev = set_parallel_mode(ParallelMode::ForceOff);
                    let built = self.build_hash_side(table, column);
                    set_parallel_mode(prev);
                    let rc = built?;
                    map.insert(key.clone(), rc.clone());
                    rc
                }
            };
            drop(map);
            self.hash_builds.borrow_mut().insert(key, rc.clone());
            return Ok(rc);
        }
        let rc = self.build_hash_side(table, column)?;
        self.hash_builds.borrow_mut().insert(key, rc.clone());
        Ok(rc)
    }

    /// Scan `table` into a build-side map, partitioned across the pool
    /// when the cost model (or ForceOn) says the scan is wide enough.
    /// Row ids are dense indices, so per-range maps merged in range
    /// order reproduce the serial ascending-rid postings exactly;
    /// `rows_scanned` is charged once for the whole table either way.
    fn build_hash_side(&self, table: &'db Table, column: usize) -> Result<HashBuild, ExecError> {
        let len = table.len();
        let mode = parallel_mode();
        let pool = ppf_pool::global();
        let threads = pool.threads();
        let mut decision = par_cost::ParDecision::Serial("off");
        match mode {
            ParallelMode::ForceOff => {}
            ParallelMode::ForceOn => {
                if threads > 1 && len >= 2 {
                    decision = par_cost::ParDecision::Fork {
                        chunks: force_on_chunks(len, threads),
                        est_ns: 0.0,
                    };
                }
            }
            ParallelMode::Auto => {
                if threads > 1 {
                    if pool.is_saturated() {
                        self.stats.borrow_mut().par_degraded += 1;
                    } else {
                        decision = par_cost::decide(
                            par_cost::WorkKind::HashBuild,
                            len as f64,
                            len,
                            threads,
                        );
                        self.log_par_decision(par_cost::describe(
                            par_cost::WorkKind::HashBuild,
                            &decision,
                        ));
                    }
                }
            }
        }
        let par_cost::ParDecision::Fork { chunks, .. } = decision else {
            let t0 = (mode == ParallelMode::Auto && threads > 1).then(std::time::Instant::now);
            let mut map: std::collections::BTreeMap<Value, Vec<RowId>> =
                std::collections::BTreeMap::new();
            for (rid, row) in table.rows() {
                if !row[column].is_null() {
                    map.entry(row[column].clone()).or_default().push(rid);
                }
            }
            self.stats.borrow_mut().rows_scanned += len as u64;
            if let Some(t0) = t0 {
                par_cost::note_serial(
                    par_cost::WorkKind::HashBuild,
                    len as f64,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            return Ok(Arc::new(map));
        };
        let ranges = ppf_pool::even_ranges(len, chunks);
        {
            let mut stats = self.stats.borrow_mut();
            stats.par_tasks += 1;
            stats.par_chunks += ranges.len() as u64;
            stats.par_rows += len as u64;
            let widest = ranges.iter().map(|r| r.len() as u64).max().unwrap_or(0);
            stats.par_chunk_rows_max = stats.par_chunk_rows_max.max(widest);
        }
        let limits = self.limits();
        let busy = std::sync::atomic::AtomicU64::new(0);
        let t_fork = std::time::Instant::now();
        let parts = pool
            .try_map_ranges(&ranges, |_, range| {
                limits.check_interrupt()?;
                let t_chunk = std::time::Instant::now();
                obs::profile::record(obs::profile::EventKind::ChunkStart, range.len() as u64);
                let mut map: std::collections::BTreeMap<Value, Vec<RowId>> =
                    std::collections::BTreeMap::new();
                for rid in range {
                    let row = table.row(rid);
                    if !row[column].is_null() {
                        map.entry(row[column].clone()).or_default().push(rid);
                    }
                }
                obs::profile::record(obs::profile::EventKind::ChunkEnd, map.len() as u64);
                busy.fetch_add(t_chunk.elapsed().as_nanos() as u64, Relaxed);
                Ok::<_, ExecError>(map)
            })
            .map_err(|p| {
                ExecError::exec(format!(
                    "parallel hash-build worker panicked: {}",
                    p.message
                ))
            })?;
        if mode == ParallelMode::Auto {
            par_cost::note_fork(
                busy.load(Relaxed),
                t_fork.elapsed().as_nanos() as u64,
                threads,
            );
        }
        let mut merged: std::collections::BTreeMap<Value, Vec<RowId>> =
            std::collections::BTreeMap::new();
        for part in parts {
            for (k, mut v) in part? {
                merged.entry(k).or_default().append(&mut v);
            }
        }
        self.stats.borrow_mut().rows_scanned += len as u64;
        Ok(Arc::new(merged))
    }

    // ----- expression evaluation -----

    fn eval_truth(&self, e: &Expr, env: &mut Vec<Binding<'db>>) -> Result<Option<bool>, ExecError> {
        let v = self.eval(e, env)?;
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(b)),
            other => Err(ExecError::exec(format!(
                "predicate evaluated to non-boolean value {other}"
            ))),
        }
    }

    fn eval(&self, e: &Expr, env: &mut Vec<Binding<'db>>) -> Result<Value, ExecError> {
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { qualifier, name } => self.lookup(qualifier.as_deref(), name, env),
            Expr::Cmp { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                Ok(compare(*op, &a, &b))
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                let l = self.eval(lo, env)?;
                let h = self.eval(hi, env)?;
                let ge = compare(CmpOp::Ge, &v, &l);
                let le = compare(CmpOp::Le, &v, &h);
                let both = and3(truth(&ge), truth(&le));
                let res = if *negated { not3(both) } else { both };
                Ok(to_bool(res))
            }
            Expr::And(xs) => {
                let mut acc = Some(true);
                for x in xs {
                    let t = self.eval_truth(x, env)?;
                    acc = and3(acc, t);
                    if acc == Some(false) {
                        break;
                    }
                }
                Ok(to_bool(acc))
            }
            Expr::Or(xs) => {
                let mut acc = Some(false);
                for x in xs {
                    let t = self.eval_truth(x, env)?;
                    acc = or3(acc, t);
                    if acc == Some(true) {
                        break;
                    }
                }
                Ok(to_bool(acc))
            }
            Expr::Not(x) => {
                let t = self.eval_truth(x, env)?;
                Ok(to_bool(not3(t)))
            }
            Expr::Exists(sub) => {
                self.stats.borrow_mut().subqueries += 1;
                let mut found = false;
                self.select_rows(sub, env, &mut |_, _| {
                    found = true;
                    Ok(false) // stop at first row
                })?;
                Ok(Value::Bool(found))
            }
            Expr::ScalarSubquery(sub) => {
                self.stats.borrow_mut().subqueries += 1;
                if sub.projections.len() != 1 {
                    return Err(ExecError::exec(
                        "scalar subquery must project exactly one column",
                    ));
                }
                let mut result: Option<Value> = None;
                let proj = &sub.projections[0].expr;
                let mut count = 0usize;
                self.select_rows(sub, env, &mut |exec, env2| {
                    count += 1;
                    if count > 1 {
                        return Err(ExecError::exec(
                            "scalar subquery returned more than one row",
                        ));
                    }
                    result = Some(exec.eval(proj, env2)?);
                    Ok(true)
                })?;
                Ok(result.unwrap_or(Value::Null))
            }
            Expr::RegexpLike { subject, pattern } => {
                let v = self.eval(subject, env)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let re = self.cached_regex(pattern)?;
                        Ok(Value::Bool(re.is_match(&s)))
                    }
                    other => Err(ExecError::exec(format!(
                        "REGEXP_LIKE subject must be text, got {other}"
                    ))),
                }
            }
            Expr::Concat(a, b) => {
                let av = self.eval(a, env)?;
                let bv = self.eval(b, env)?;
                match (av, bv) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Bytes(mut x), Value::Bytes(y)) => {
                        x.extend_from_slice(&y);
                        Ok(Value::Bytes(x))
                    }
                    (a, b) => {
                        let mut s = display_raw(&a);
                        s.push_str(&display_raw(&b));
                        Ok(Value::Str(s))
                    }
                }
            }
            Expr::Arith { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                arith(*op, &a, &b)
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, env)?;
                let isnull = v.is_null();
                Ok(Value::Bool(if *negated { !isnull } else { isnull }))
            }
            Expr::CountStar => match self.count_result.get() {
                Some(c) => Ok(Value::Int(c)),
                None => Err(ExecError::exec("COUNT(*) outside aggregate context")),
            },
        }
    }

    fn lookup(
        &self,
        qualifier: Option<&str>,
        name: &str,
        env: &[Binding<'db>],
    ) -> Result<Value, ExecError> {
        // Inner bindings shadow outer ones, so scan from the end.
        for b in env.iter().rev() {
            match qualifier {
                Some(q) if q != &*b.alias => continue,
                _ => {}
            }
            if let Some(ci) = b.table.schema.col(name) {
                return Ok(b.table.row(b.rid)[ci].clone());
            }
            if qualifier.is_some() {
                return Err(ExecError::exec(format!(
                    "alias `{}` has no column `{name}`",
                    b.alias
                )));
            }
        }
        Err(ExecError::exec(match qualifier {
            Some(q) => format!("unknown column `{q}.{name}`"),
            None => format!("unknown column `{name}`"),
        }))
    }
}

// ----- helpers -----

/// An evaluated range endpoint: the key value plus inclusivity; `None`
/// means unbounded on that side.
type RangeEnd = Option<(Value, bool)>;

/// Borrow a range endpoint as a one-column `BTreeMap` bound — no key copy.
fn bound_of(end: &RangeEnd) -> Bound<&[Value]> {
    match end {
        None => Bound::Unbounded,
        Some((v, true)) => Bound::Included(std::slice::from_ref(v)),
        Some((v, false)) => Bound::Excluded(std::slice::from_ref(v)),
    }
}

/// Lexicographic comparison of a composite key against a (possibly
/// shorter) bound slice, matching the B-tree's `Vec<Value>` ordering: a
/// key extending the bound by extra columns compares greater.
fn cmp_key_bound(key: &[Value], bound: &[Value]) -> std::cmp::Ordering {
    for (k, b) in key.iter().zip(bound) {
        match k.cmp_total(b) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    key.len().cmp(&bound.len())
}

/// Does `key` satisfy the lower endpoint?
fn above_lo(key: &[Value], lo: &RangeEnd) -> bool {
    match lo {
        None => true,
        Some((v, inc)) => {
            let ord = cmp_key_bound(key, std::slice::from_ref(v));
            ord == std::cmp::Ordering::Greater || (*inc && ord == std::cmp::Ordering::Equal)
        }
    }
}

/// Does `key` satisfy the upper endpoint?
fn within_hi(key: &[Value], hi: &RangeEnd) -> bool {
    match hi {
        None => true,
        Some((v, inc)) => {
            let ord = cmp_key_bound(key, std::slice::from_ref(v));
            ord == std::cmp::Ordering::Less || (*inc && ord == std::cmp::Ordering::Equal)
        }
    }
}

/// First entry index satisfying the lower endpoint, using the previous
/// probe's position as a hint. When successive probes arrive in document
/// order (the staircase case of Dewey structural joins) the hint is exact
/// and the seek is O(1); otherwise it gallops from the hint and finishes
/// with a binary search, so an out-of-order probe costs O(log n).
fn seek_first(entries: &[(&[Value], &[RowId])], hint: usize, lo: &RangeEnd) -> usize {
    let len = entries.len();
    let pos = hint.min(len);
    let (lo_i, hi_i) = if pos < len && !above_lo(entries[pos].0, lo) {
        // The window starts right of the hint: gallop to bracket it.
        let mut width = 1usize;
        let mut prev = pos;
        loop {
            let next = (prev + width).min(len);
            if next == len || above_lo(entries[next].0, lo) {
                break (prev + 1, next);
            }
            prev = next;
            width *= 2;
        }
    } else {
        // The hint is already inside the window; if its predecessor is
        // below the bound, the hint is exactly the window start.
        if pos == 0 || !above_lo(entries[pos - 1].0, lo) {
            return pos;
        }
        (0, pos)
    };
    lo_i + entries[lo_i..hi_i].partition_point(|(k, _)| !above_lo(k, lo))
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn to_bool(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

/// Raw (unquoted) text form for concatenation.
fn display_raw(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Bytes(b) => b.iter().map(|x| format!("{x:02X}")).collect(),
        Value::Null => String::new(),
    }
}

/// SQL comparison with implicit numeric conversion (Oracle-style) and NULL
/// propagation. Returns `Bool` or `Null`.
pub fn compare(op: CmpOp, a: &Value, b: &Value) -> Value {
    use std::cmp::Ordering;
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    let ord: Option<Ordering> = match (a, b) {
        (Value::Int(_), Value::Int(_))
        | (Value::Float(_), Value::Float(_))
        | (Value::Int(_), Value::Float(_))
        | (Value::Float(_), Value::Int(_))
        | (Value::Str(_), Value::Str(_))
        | (Value::Bytes(_), Value::Bytes(_))
        | (Value::Bool(_), Value::Bool(_)) => Some(a.cmp_total(b)),
        // Implicit text→number conversion when compared with a number.
        (Value::Str(s), Value::Int(_) | Value::Float(_)) => s
            .trim()
            .parse::<f64>()
            .ok()
            .map(|x| Value::Float(x).cmp_total(b)),
        (Value::Int(_) | Value::Float(_), Value::Str(s)) => s
            .trim()
            .parse::<f64>()
            .ok()
            .map(|x| a.cmp_total(&Value::Float(x))),
        _ => None,
    };
    match ord {
        None => Value::Null, // incomparable (e.g. unparsable text vs number)
        Some(ord) => {
            let b = match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            };
            Value::Bool(b)
        }
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value, ExecError> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let to_num = |v: &Value| -> Result<(i64, f64, bool), ExecError> {
        match v {
            Value::Int(i) => Ok((*i, *i as f64, true)),
            Value::Float(f) => Ok((0, *f, false)),
            Value::Str(s) => match s.trim().parse::<f64>() {
                Ok(f) => Ok((0, f, false)),
                Err(_) => Err(ExecError::exec(format!("cannot use {v} in arithmetic"))),
            },
            other => Err(ExecError::exec(format!("cannot use {other} in arithmetic"))),
        }
    };
    let (ai, af, a_int) = to_num(a)?;
    let (bi, bf, b_int) = to_num(b)?;
    if a_int && b_int && op != ArithOp::Div {
        let r = match op {
            ArithOp::Add => ai.checked_add(bi),
            ArithOp::Sub => ai.checked_sub(bi),
            ArithOp::Mul => ai.checked_mul(bi),
            ArithOp::Div => unreachable!(),
        };
        return r
            .map(Value::Int)
            .ok_or_else(|| ExecError::exec("integer overflow"));
    }
    let r = match op {
        ArithOp::Add => af + bf,
        ArithOp::Sub => af - bf,
        ArithOp::Mul => af * bf,
        ArithOp::Div => {
            if bf == 0.0 {
                return Ok(Value::Null);
            }
            af / bf
        }
    };
    Ok(Value::Float(r))
}

/// The smallest value strictly greater than `v` in the total order, when
/// one can be written down (used to turn an inclusive leading-column bound
/// on a composite index into an exclusive bound that covers all suffixes).
fn value_successor(v: &Value) -> Option<Value> {
    match v {
        Value::Int(i) => i.checked_add(1).map(Value::Int),
        Value::Str(s) => {
            let mut t = s.clone();
            t.push('\0');
            Some(Value::Str(t))
        }
        Value::Bytes(b) => {
            let mut t = b.clone();
            t.push(0);
            Some(Value::Bytes(t))
        }
        Value::Bool(false) => Some(Value::Bool(true)),
        _ => None,
    }
}

fn dedup_rows(rows: &mut Vec<(Vec<Value>, Vec<Value>)>) {
    let mut seen: std::collections::BTreeSet<Vec<Value>> = std::collections::BTreeSet::new();
    rows.retain(|(_, r)| seen.insert(r.clone()));
}

/// Reference executor used by property tests: evaluates a single-branch
/// select by brute-force cross product with no planner, no indexes.
pub fn naive_select(db: &Database, sel: &Select) -> Result<Vec<Vec<Value>>, ExecError> {
    let exec = Executor::new(db);
    let mut env: Vec<Binding> = Vec::new();
    let mut out = Vec::new();
    fn recurse<'db>(
        exec: &Executor<'db>,
        db: &'db Database,
        sel: &Select,
        depth: usize,
        env: &mut Vec<Binding<'db>>,
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), ExecError> {
        if depth == sel.from.len() {
            if let Some(w) = &sel.where_clause {
                if exec.eval_truth(w, env)? != Some(true) {
                    return Ok(());
                }
            }
            let row: Vec<Value> = sel
                .projections
                .iter()
                .map(|p| exec.eval(&p.expr, env))
                .collect::<Result<_, _>>()?;
            out.push(row);
            return Ok(());
        }
        let tref = &sel.from[depth];
        let table = db
            .table(&tref.table)
            .ok_or_else(|| ExecError::exec(format!("no such table `{}`", tref.table)))?;
        let alias: Arc<str> = Arc::from(tref.alias.as_str());
        for (rid, _) in table.rows() {
            env.push(Binding {
                alias: alias.clone(),
                table,
                rid,
            });
            recurse(exec, db, sel, depth + 1, env, out)?;
            env.pop();
        }
        Ok(())
    }
    recurse(&exec, db, sel, 0, &mut env, &mut out)?;
    if sel.distinct {
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}
