//! SQL execution: expression evaluation (3-valued logic) and the pipeline
//! interpreter for [`SelectPlan`]s, plus `UNION` / `DISTINCT` / `ORDER BY`
//! statement post-processing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Bound;

use regexlite::Regex;
use relstore::{Database, RowId, Table, Value};

use crate::ast::{ArithOp, CmpOp, Expr, Select, SelectStmt};
use crate::plan::{plan_select, Access, ExecError, SelectPlan};

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// Execution counters, for tests and the experiment harness (they make
/// "PPF scans fewer rows / does fewer probes" measurable, not just faster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by table scans and index lookups.
    pub rows_scanned: u64,
    /// Number of index probes (equality or range).
    pub index_probes: u64,
    /// Subquery executions (EXISTS and scalar).
    pub subqueries: u64,
    /// Residual and late-filter predicate evaluations.
    pub predicate_evals: u64,
}

/// Per-plan-step execution counters. One `OpStats` accumulates across every
/// invocation of its step — a step inside a nested loop or a correlated
/// subquery is invoked many times, and `invocations` counts the rescans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Times the step ran (> 1 ⇒ nested-loop rescans / subquery re-execution).
    pub invocations: u64,
    /// Rows the access path fetched and examined.
    pub rows_in: u64,
    /// Rows surviving this step's residual filters (input to the next step).
    pub rows_out: u64,
    /// Index / hash probes actually performed (NULL-key probes are skipped
    /// by the executor and not counted).
    pub index_probes: u64,
    /// Residual predicate evaluations (short-circuited ANDs count what ran).
    pub predicate_evals: u64,
    /// Inclusive wall time — this step and everything nested below it.
    /// Accumulated only while profiling is enabled (`set_profiling`).
    pub elapsed_ns: u64,
}

impl OpStats {
    fn absorb(&mut self, other: &OpStats) {
        self.invocations += other.invocations;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.index_probes += other.index_probes;
        self.predicate_evals += other.predicate_evals;
        self.elapsed_ns += other.elapsed_ns;
    }
}

/// A cached hash-join build side: probe key -> matching row ids.
type HashBuild = std::rc::Rc<std::collections::BTreeMap<Value, Vec<RowId>>>;

/// Row-emission callback threaded through the nested-loop machinery;
/// returning `Ok(false)` stops the enclosing loops early.
type EmitFn<'a, 'db> =
    dyn FnMut(&Executor<'db>, &mut Vec<Binding<'db>>) -> Result<bool, ExecError> + 'a;

/// One bound alias during execution.
#[derive(Clone)]
struct Binding<'db> {
    alias: std::rc::Rc<str>,
    table: &'db Table,
    rid: RowId,
}

/// The SQL executor. Borrow a database, run statements.
pub struct Executor<'db> {
    db: &'db Database,
    regexes: RefCell<HashMap<String, Regex>>,
    stats: RefCell<ExecStats>,
    /// Per-statement plan cache keyed by `Select` address; cleared at each
    /// top-level `run` so addresses cannot dangle across statements.
    plans: RefCell<HashMap<usize, std::rc::Rc<SelectPlan>>>,
    /// Slot holding the current `COUNT(*)` aggregate while its projection
    /// is evaluated.
    count_result: std::cell::Cell<Option<i64>>,
    /// Hash-join build sides, keyed by (table, column) and cached for the
    /// whole statement (cleared per `run`, like the plan cache).
    hash_builds: RefCell<HashMap<(String, usize), HashBuild>>,
    /// Per-step counters keyed by `Select` address (same key as the plan
    /// cache), one slot per plan step; cleared at each top-level `run`.
    step_stats: RefCell<HashMap<usize, Vec<OpStats>>>,
    /// When true, `OpStats::elapsed_ns` is measured (two `Instant` reads
    /// per step invocation); counters are maintained regardless.
    profiling: std::cell::Cell<bool>,
}

impl<'db> Executor<'db> {
    pub fn new(db: &'db Database) -> Executor<'db> {
        Executor {
            db,
            regexes: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecStats::default()),
            plans: RefCell::new(HashMap::new()),
            count_result: std::cell::Cell::new(None),
            hash_builds: RefCell::new(HashMap::new()),
            step_stats: RefCell::new(HashMap::new()),
            profiling: std::cell::Cell::new(false),
        }
    }

    /// Enable per-step wall-time measurement (used by `EXPLAIN ANALYZE`).
    pub fn set_profiling(&self, on: bool) {
        self.profiling.set(on);
    }

    /// Per-step counters for a `Select` executed by the current statement
    /// (`None` if the block never ran — e.g. a short-circuited subquery).
    /// Slots align with the plan's steps in execution order.
    pub fn step_stats(&self, sel: &Select) -> Option<Vec<OpStats>> {
        self.step_stats
            .borrow()
            .get(&(sel as *const Select as usize))
            .cloned()
    }

    /// The plan the current statement actually used for `sel`, if that
    /// block was planned. `EXPLAIN ANALYZE` renders subquery blocks from
    /// this plan so they are the very `Select` clones the executor
    /// profiled (re-planning would produce fresh clones whose addresses
    /// match no recorded counters).
    pub fn cached_plan(&self, sel: &Select) -> Option<std::rc::Rc<SelectPlan>> {
        self.plans
            .borrow()
            .get(&(sel as *const Select as usize))
            .cloned()
    }

    /// Every (plan, per-step counters) pair the current statement
    /// recorded, across all executed blocks (branches and subqueries), in
    /// no particular order. Lets callers roll counters up by table — e.g.
    /// "rows examined vs surviving on the `Paths` table" — without
    /// knowing the statement's shape.
    pub fn profiled_steps(&self) -> Vec<(std::rc::Rc<SelectPlan>, Vec<OpStats>)> {
        let plans = self.plans.borrow();
        self.step_stats
            .borrow()
            .iter()
            .filter_map(|(key, ops)| plans.get(key).map(|p| (p.clone(), ops.clone())))
            .collect()
    }

    /// Counters accumulated since construction (or the last reset).
    pub fn stats(&self) -> ExecStats {
        *self.stats.borrow()
    }

    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = ExecStats::default();
    }

    /// Parse and run a SQL string.
    pub fn query(&self, sql: &str) -> Result<ResultSet, ExecError> {
        let stmt = crate::parser::parse_sql(sql).map_err(|e| ExecError(e.to_string()))?;
        self.run(&stmt)
    }

    /// Run a statement AST.
    pub fn run(&self, stmt: &SelectStmt) -> Result<ResultSet, ExecError> {
        self.plans.borrow_mut().clear();
        self.hash_builds.borrow_mut().clear();
        self.step_stats.borrow_mut().clear();
        if stmt.branches.is_empty() {
            return Err(ExecError("statement has no SELECT branch".into()));
        }
        let multi = stmt.branches.len() > 1;
        // UNION branches must agree on arity, or dedup/sort would index
        // out of bounds across rows of different widths.
        let arity = stmt.branches[0].projections.len();
        if stmt.branches.iter().any(|b| b.projections.len() != arity) {
            return Err(ExecError(
                "UNION branches project different numbers of columns".into(),
            ));
        }

        // Resolve ORDER BY keys. Keys naming an output column sort on the
        // projected value (required for UNION); otherwise the key expression
        // is evaluated against the FROM bindings of the (single) branch.
        enum KeyKind {
            Output(usize),
            Computed(Expr),
        }
        let first = &stmt.branches[0];
        let mut keys: Vec<(KeyKind, bool)> = Vec::new();
        for k in &stmt.order_by {
            let kind = match &k.expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } => {
                    let pos = first.projections.iter().position(|p| {
                        p.alias.as_deref() == Some(name.as_str())
                            || matches!(&p.expr, Expr::Column { name: n, .. } if n == name)
                    });
                    match pos {
                        Some(i) => KeyKind::Output(i),
                        None => KeyKind::Computed(k.expr.clone()),
                    }
                }
                other => KeyKind::Computed(other.clone()),
            };
            if multi && matches!(kind, KeyKind::Computed(_)) {
                return Err(ExecError(
                    "ORDER BY over UNION must reference an output column".into(),
                ));
            }
            keys.push((kind, k.desc));
        }

        let mut all_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (sort keys, row)
        for sel in &stmt.branches {
            let mut env: Vec<Binding> = Vec::new();
            let mut branch_rows = Vec::new();
            self.select_rows(sel, &mut env, &mut |exec, env| {
                let row: Vec<Value> = sel
                    .projections
                    .iter()
                    .map(|p| exec.eval(&p.expr, env))
                    .collect::<Result<_, _>>()?;
                let mut sort_key = Vec::with_capacity(keys.len());
                for (kind, _) in &keys {
                    match kind {
                        KeyKind::Output(i) => sort_key.push(row[*i].clone()),
                        KeyKind::Computed(e) => sort_key.push(exec.eval(e, env)?),
                    }
                }
                branch_rows.push((sort_key, row));
                Ok(true)
            })?;
            if sel.distinct {
                dedup_rows(&mut branch_rows);
            }
            all_rows.extend(branch_rows);
        }
        if multi {
            // UNION has set semantics.
            dedup_rows(&mut all_rows);
        }
        if !keys.is_empty() {
            all_rows.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = ka[i].cmp_total(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let columns = first
            .projections
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.alias.clone().unwrap_or_else(|| match &p.expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::CountStar => "count".to_string(),
                    _ => format!("col{i}"),
                })
            })
            .collect();
        Ok(ResultSet {
            columns,
            rows: all_rows.into_iter().map(|(_, r)| r).collect(),
        })
    }

    /// Run one select block, calling `emit` per surviving binding (or once
    /// with the aggregate when the projection is `COUNT(*)`).
    /// `emit` returns `false` to stop early (EXISTS).
    fn select_rows<'e>(
        &'e self,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
    ) -> Result<(), ExecError>
    where
        'db: 'e,
    {
        let is_count = sel
            .projections
            .iter()
            .any(|p| matches!(p.expr, Expr::CountStar));
        if is_count && sel.projections.len() != 1 {
            return Err(ExecError("COUNT(*) must be the only projection".into()));
        }

        let plan = self.plan_for(sel, env)?;
        if is_count {
            let mut count: i64 = 0;
            self.exec_steps(&plan, 0, sel, env, &mut |_, _| {
                count += 1;
                Ok(true)
            })?;
            // Deliver the count through a one-off binding-free emit: the
            // caller reads it via `eval(CountStar)` — we stash it.
            self.count_result.set(Some(count));
            emit(self, env)?;
            self.count_result.set(None);
            return Ok(());
        }
        self.exec_steps(&plan, 0, sel, env, emit)?;
        Ok(())
    }

    fn plan_for(
        &self,
        sel: &Select,
        env: &[Binding<'db>],
    ) -> Result<std::rc::Rc<SelectPlan>, ExecError> {
        let key = sel as *const Select as usize;
        if let Some(p) = self.plans.borrow().get(&key) {
            return Ok(p.clone());
        }
        let outer: Vec<(String, String)> = env
            .iter()
            .map(|b| (b.alias.to_string(), b.table.schema.name.clone()))
            .collect();
        let plan = std::rc::Rc::new(plan_select(self.db, sel, &outer)?);
        self.plans.borrow_mut().insert(key, plan.clone());
        Ok(plan)
    }

    /// Wrapper around [`Self::exec_steps_inner`] that flushes this step's
    /// counters into `step_stats` and the global `ExecStats` on *every*
    /// exit path — including errors, which previously dropped the counts
    /// accumulated before the failure (the EXISTS/scalar-subquery
    /// undercount).
    fn exec_steps<'e>(
        &'e self,
        plan: &SelectPlan,
        depth: usize,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
    ) -> Result<bool, ExecError> {
        if depth == plan.steps.len() {
            if !plan.late_filters.is_empty() {
                let mut evals = 0u64;
                let mut pass = true;
                for f in &plan.late_filters {
                    evals += 1;
                    match self.eval_truth(f, env) {
                        Ok(Some(true)) => {}
                        Ok(_) => {
                            pass = false;
                            break;
                        }
                        Err(e) => {
                            self.stats.borrow_mut().predicate_evals += evals;
                            return Err(e);
                        }
                    }
                }
                self.stats.borrow_mut().predicate_evals += evals;
                if !pass {
                    return Ok(true);
                }
            }
            return emit(self, env);
        }

        let t0 = self.profiling.get().then(std::time::Instant::now);
        let mut local = OpStats {
            invocations: 1,
            ..OpStats::default()
        };
        let result = self.exec_steps_inner(plan, depth, sel, env, emit, &mut local);
        if let Some(t0) = t0 {
            local.elapsed_ns = t0.elapsed().as_nanos() as u64;
        }
        {
            let mut map = self.step_stats.borrow_mut();
            let slots = map
                .entry(sel as *const Select as usize)
                .or_insert_with(|| vec![OpStats::default(); plan.steps.len()]);
            slots[depth].absorb(&local);
        }
        {
            let mut stats = self.stats.borrow_mut();
            stats.rows_scanned += local.rows_in;
            stats.index_probes += local.index_probes;
            stats.predicate_evals += local.predicate_evals;
        }
        result
    }

    fn exec_steps_inner<'e>(
        &'e self,
        plan: &SelectPlan,
        depth: usize,
        sel: &'e Select,
        env: &mut Vec<Binding<'db>>,
        emit: &mut EmitFn<'_, 'db>,
        local: &mut OpStats,
    ) -> Result<bool, ExecError> {
        let step = &plan.steps[depth];
        let table = self
            .db
            .table(&step.table)
            .ok_or_else(|| ExecError(format!("no such table `{}`", step.table)))?;

        // Materialize candidate row ids from the access path.
        let mut probe_rows: Vec<RowId> = Vec::new();
        match &step.access {
            Access::FullScan => {
                probe_rows.extend(table.rows().map(|(rid, _)| rid));
            }
            Access::HashEq { column, key } => {
                let build = self.hash_build(&step.table, table, *column);
                let k = self.eval(key, env)?;
                // A NULL key matches nothing; no probe is performed.
                if !k.is_null() {
                    local.index_probes += 1;
                    if let Some(rids) = build.get(&k) {
                        probe_rows.extend_from_slice(rids);
                    }
                }
            }
            Access::IndexEq { index, keys } => {
                let mut key_vals = Vec::with_capacity(keys.len());
                let mut any_null = false;
                for k in keys {
                    let v = self.eval(k, env)?;
                    if v.is_null() {
                        any_null = true;
                        break;
                    }
                    key_vals.push(v);
                }
                if !any_null {
                    local.index_probes += 1;
                    probe_rows.extend_from_slice(table.indexes()[*index].get(&key_vals));
                }
            }
            Access::IndexRange { index, lo, hi } => {
                let lo_v = match lo {
                    Some((e, inc)) => {
                        let v = self.eval(e, env)?;
                        if v.is_null() {
                            None // comparison with NULL selects nothing
                        } else {
                            Some((vec![v], *inc))
                        }
                    }
                    None => Some((Vec::new(), true)), // unbounded marker below
                };
                let hi_v = match hi {
                    Some((e, inc)) => {
                        let v = self.eval(e, env)?;
                        if v.is_null() {
                            None
                        } else {
                            Some((vec![v], *inc))
                        }
                    }
                    None => Some((Vec::new(), true)),
                };
                // An inverted interval selects nothing (and std's
                // BTreeMap::range panics on start > end, so guard it).
                let inverted = match (&lo_v, &hi_v) {
                    (Some((lo_k, lo_inc)), Some((hi_k, hi_inc)))
                        if !lo_k.is_empty() && !hi_k.is_empty() =>
                    {
                        match lo_k[0].cmp_total(&hi_k[0]) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Equal => !(*lo_inc && *hi_inc),
                            std::cmp::Ordering::Less => false,
                        }
                    }
                    _ => false,
                };
                if let (false, Some((lo_k, lo_inc)), Some((hi_k, hi_inc))) = (inverted, lo_v, hi_v)
                {
                    local.index_probes += 1;
                    let ix = &table.indexes()[*index];
                    let lob = if lo_k.is_empty() {
                        Bound::Unbounded
                    } else if lo_inc {
                        Bound::Included(&lo_k[..])
                    } else {
                        Bound::Excluded(&lo_k[..])
                    };
                    // For composite indexes an inclusive range on the
                    // leading column must include all suffixes: scan up to
                    // (but excluding) the successor of the bound value in
                    // the leading column's order; if no successor exists,
                    // fall back to an unbounded scan — the driving
                    // conjuncts are re-checked as residuals, so a superset
                    // is always safe.
                    let hi_owned;
                    let hib = if hi_k.is_empty() {
                        Bound::Unbounded
                    } else if ix.key_cols.len() > 1 {
                        if hi_inc {
                            match value_successor(&hi_k[0]) {
                                Some(s) => {
                                    hi_owned = vec![s];
                                    Bound::Excluded(&hi_owned[..])
                                }
                                None => Bound::Unbounded,
                            }
                        } else {
                            Bound::Excluded(&hi_k[..])
                        }
                    } else if hi_inc {
                        Bound::Included(&hi_k[..])
                    } else {
                        Bound::Excluded(&hi_k[..])
                    };
                    probe_rows.extend(ix.range(lob, hib));
                }
            }
        }

        for rid in probe_rows {
            local.rows_in += 1;
            env.push(Binding {
                alias: step.alias.clone(),
                table,
                rid,
            });
            let mut pass = true;
            for r in &step.residuals {
                local.predicate_evals += 1;
                match self.eval_truth(r, env) {
                    Ok(Some(true)) => {}
                    Ok(_) => {
                        pass = false;
                        break;
                    }
                    Err(e) => {
                        env.pop();
                        return Err(e);
                    }
                }
            }
            let keep_going = if pass {
                local.rows_out += 1;
                match self.exec_steps(plan, depth + 1, sel, env, emit) {
                    Ok(k) => k,
                    Err(e) => {
                        env.pop();
                        return Err(e);
                    }
                }
            } else {
                true
            };
            env.pop();
            if !keep_going {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Build (or fetch the cached) hash-join build side for a column.
    fn hash_build(&self, table_name: &str, table: &Table, column: usize) -> HashBuild {
        let key = (table_name.to_string(), column);
        if let Some(b) = self.hash_builds.borrow().get(&key) {
            return b.clone();
        }
        let mut map: std::collections::BTreeMap<Value, Vec<RowId>> =
            std::collections::BTreeMap::new();
        for (rid, row) in table.rows() {
            if !row[column].is_null() {
                map.entry(row[column].clone()).or_default().push(rid);
            }
        }
        self.stats.borrow_mut().rows_scanned += table.len() as u64;
        let rc = std::rc::Rc::new(map);
        self.hash_builds.borrow_mut().insert(key, rc.clone());
        rc
    }

    // ----- expression evaluation -----

    fn eval_truth(&self, e: &Expr, env: &mut Vec<Binding<'db>>) -> Result<Option<bool>, ExecError> {
        let v = self.eval(e, env)?;
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(b)),
            other => Err(ExecError(format!(
                "predicate evaluated to non-boolean value {other}"
            ))),
        }
    }

    fn eval(&self, e: &Expr, env: &mut Vec<Binding<'db>>) -> Result<Value, ExecError> {
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { qualifier, name } => self.lookup(qualifier.as_deref(), name, env),
            Expr::Cmp { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                Ok(compare(*op, &a, &b))
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                let l = self.eval(lo, env)?;
                let h = self.eval(hi, env)?;
                let ge = compare(CmpOp::Ge, &v, &l);
                let le = compare(CmpOp::Le, &v, &h);
                let both = and3(truth(&ge), truth(&le));
                let res = if *negated { not3(both) } else { both };
                Ok(to_bool(res))
            }
            Expr::And(xs) => {
                let mut acc = Some(true);
                for x in xs {
                    let t = self.eval_truth(x, env)?;
                    acc = and3(acc, t);
                    if acc == Some(false) {
                        break;
                    }
                }
                Ok(to_bool(acc))
            }
            Expr::Or(xs) => {
                let mut acc = Some(false);
                for x in xs {
                    let t = self.eval_truth(x, env)?;
                    acc = or3(acc, t);
                    if acc == Some(true) {
                        break;
                    }
                }
                Ok(to_bool(acc))
            }
            Expr::Not(x) => {
                let t = self.eval_truth(x, env)?;
                Ok(to_bool(not3(t)))
            }
            Expr::Exists(sub) => {
                self.stats.borrow_mut().subqueries += 1;
                let mut found = false;
                self.select_rows(sub, env, &mut |_, _| {
                    found = true;
                    Ok(false) // stop at first row
                })?;
                Ok(Value::Bool(found))
            }
            Expr::ScalarSubquery(sub) => {
                self.stats.borrow_mut().subqueries += 1;
                if sub.projections.len() != 1 {
                    return Err(ExecError(
                        "scalar subquery must project exactly one column".into(),
                    ));
                }
                let mut result: Option<Value> = None;
                let proj = &sub.projections[0].expr;
                let mut count = 0usize;
                self.select_rows(sub, env, &mut |exec, env2| {
                    count += 1;
                    if count > 1 {
                        return Err(ExecError(
                            "scalar subquery returned more than one row".into(),
                        ));
                    }
                    result = Some(exec.eval(proj, env2)?);
                    Ok(true)
                })?;
                Ok(result.unwrap_or(Value::Null))
            }
            Expr::RegexpLike { subject, pattern } => {
                let v = self.eval(subject, env)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let mut cache = self.regexes.borrow_mut();
                        let re = match cache.get(pattern) {
                            Some(r) => r,
                            None => {
                                let compiled = Regex::new(pattern).map_err(|e| {
                                    ExecError(format!("bad regex `{pattern}`: {e}"))
                                })?;
                                cache.entry(pattern.clone()).or_insert(compiled)
                            }
                        };
                        Ok(Value::Bool(re.is_match(&s)))
                    }
                    other => Err(ExecError(format!(
                        "REGEXP_LIKE subject must be text, got {other}"
                    ))),
                }
            }
            Expr::Concat(a, b) => {
                let av = self.eval(a, env)?;
                let bv = self.eval(b, env)?;
                match (av, bv) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Bytes(mut x), Value::Bytes(y)) => {
                        x.extend_from_slice(&y);
                        Ok(Value::Bytes(x))
                    }
                    (a, b) => {
                        let mut s = display_raw(&a);
                        s.push_str(&display_raw(&b));
                        Ok(Value::Str(s))
                    }
                }
            }
            Expr::Arith { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                arith(*op, &a, &b)
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, env)?;
                let isnull = v.is_null();
                Ok(Value::Bool(if *negated { !isnull } else { isnull }))
            }
            Expr::CountStar => match self.count_result.get() {
                Some(c) => Ok(Value::Int(c)),
                None => Err(ExecError("COUNT(*) outside aggregate context".into())),
            },
        }
    }

    fn lookup(
        &self,
        qualifier: Option<&str>,
        name: &str,
        env: &[Binding<'db>],
    ) -> Result<Value, ExecError> {
        // Inner bindings shadow outer ones, so scan from the end.
        for b in env.iter().rev() {
            match qualifier {
                Some(q) if q != &*b.alias => continue,
                _ => {}
            }
            if let Some(ci) = b.table.schema.col(name) {
                return Ok(b.table.row(b.rid)[ci].clone());
            }
            if qualifier.is_some() {
                return Err(ExecError(format!(
                    "alias `{}` has no column `{name}`",
                    b.alias
                )));
            }
        }
        Err(ExecError(match qualifier {
            Some(q) => format!("unknown column `{q}.{name}`"),
            None => format!("unknown column `{name}`"),
        }))
    }
}

// ----- helpers -----

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn to_bool(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

/// Raw (unquoted) text form for concatenation.
fn display_raw(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Bytes(b) => b.iter().map(|x| format!("{x:02X}")).collect(),
        Value::Null => String::new(),
    }
}

/// SQL comparison with implicit numeric conversion (Oracle-style) and NULL
/// propagation. Returns `Bool` or `Null`.
pub fn compare(op: CmpOp, a: &Value, b: &Value) -> Value {
    use std::cmp::Ordering;
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    let ord: Option<Ordering> = match (a, b) {
        (Value::Int(_), Value::Int(_))
        | (Value::Float(_), Value::Float(_))
        | (Value::Int(_), Value::Float(_))
        | (Value::Float(_), Value::Int(_))
        | (Value::Str(_), Value::Str(_))
        | (Value::Bytes(_), Value::Bytes(_))
        | (Value::Bool(_), Value::Bool(_)) => Some(a.cmp_total(b)),
        // Implicit text→number conversion when compared with a number.
        (Value::Str(s), Value::Int(_) | Value::Float(_)) => s
            .trim()
            .parse::<f64>()
            .ok()
            .map(|x| Value::Float(x).cmp_total(b)),
        (Value::Int(_) | Value::Float(_), Value::Str(s)) => s
            .trim()
            .parse::<f64>()
            .ok()
            .map(|x| a.cmp_total(&Value::Float(x))),
        _ => None,
    };
    match ord {
        None => Value::Null, // incomparable (e.g. unparsable text vs number)
        Some(ord) => {
            let b = match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            };
            Value::Bool(b)
        }
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value, ExecError> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let to_num = |v: &Value| -> Result<(i64, f64, bool), ExecError> {
        match v {
            Value::Int(i) => Ok((*i, *i as f64, true)),
            Value::Float(f) => Ok((0, *f, false)),
            Value::Str(s) => match s.trim().parse::<f64>() {
                Ok(f) => Ok((0, f, false)),
                Err(_) => Err(ExecError(format!("cannot use {v} in arithmetic"))),
            },
            other => Err(ExecError(format!("cannot use {other} in arithmetic"))),
        }
    };
    let (ai, af, a_int) = to_num(a)?;
    let (bi, bf, b_int) = to_num(b)?;
    if a_int && b_int && op != ArithOp::Div {
        let r = match op {
            ArithOp::Add => ai.checked_add(bi),
            ArithOp::Sub => ai.checked_sub(bi),
            ArithOp::Mul => ai.checked_mul(bi),
            ArithOp::Div => unreachable!(),
        };
        return r
            .map(Value::Int)
            .ok_or_else(|| ExecError("integer overflow".into()));
    }
    let r = match op {
        ArithOp::Add => af + bf,
        ArithOp::Sub => af - bf,
        ArithOp::Mul => af * bf,
        ArithOp::Div => {
            if bf == 0.0 {
                return Ok(Value::Null);
            }
            af / bf
        }
    };
    Ok(Value::Float(r))
}

/// The smallest value strictly greater than `v` in the total order, when
/// one can be written down (used to turn an inclusive leading-column bound
/// on a composite index into an exclusive bound that covers all suffixes).
fn value_successor(v: &Value) -> Option<Value> {
    match v {
        Value::Int(i) => i.checked_add(1).map(Value::Int),
        Value::Str(s) => {
            let mut t = s.clone();
            t.push('\0');
            Some(Value::Str(t))
        }
        Value::Bytes(b) => {
            let mut t = b.clone();
            t.push(0);
            Some(Value::Bytes(t))
        }
        Value::Bool(false) => Some(Value::Bool(true)),
        _ => None,
    }
}

fn dedup_rows(rows: &mut Vec<(Vec<Value>, Vec<Value>)>) {
    let mut seen: std::collections::BTreeSet<Vec<Value>> = std::collections::BTreeSet::new();
    rows.retain(|(_, r)| seen.insert(r.clone()));
}

/// Reference executor used by property tests: evaluates a single-branch
/// select by brute-force cross product with no planner, no indexes.
pub fn naive_select(db: &Database, sel: &Select) -> Result<Vec<Vec<Value>>, ExecError> {
    let exec = Executor::new(db);
    let mut env: Vec<Binding> = Vec::new();
    let mut out = Vec::new();
    fn recurse<'db>(
        exec: &Executor<'db>,
        db: &'db Database,
        sel: &Select,
        depth: usize,
        env: &mut Vec<Binding<'db>>,
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), ExecError> {
        if depth == sel.from.len() {
            if let Some(w) = &sel.where_clause {
                if exec.eval_truth(w, env)? != Some(true) {
                    return Ok(());
                }
            }
            let row: Vec<Value> = sel
                .projections
                .iter()
                .map(|p| exec.eval(&p.expr, env))
                .collect::<Result<_, _>>()?;
            out.push(row);
            return Ok(());
        }
        let tref = &sel.from[depth];
        let table = db
            .table(&tref.table)
            .ok_or_else(|| ExecError(format!("no such table `{}`", tref.table)))?;
        let alias: std::rc::Rc<str> = std::rc::Rc::from(tref.alias.as_str());
        for (rid, _) in table.rows() {
            env.push(Binding {
                alias: alias.clone(),
                table,
                rid,
            });
            recurse(exec, db, sel, depth + 1, env, out)?;
            env.pop();
        }
        Ok(())
    }
    recurse(&exec, db, sel, 0, &mut env, &mut out)?;
    if sel.distinct {
        let mut seen = std::collections::BTreeSet::new();
        out.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}
