//! `sqlexec` — SQL front end and executor over `relstore`.
//!
//! Together with `relstore` this crate is the stand-in for the paper's
//! Oracle 10g back end. It provides:
//!
//! * a SQL **AST** ([`ast`]) covering the fragment the XPath translators
//!   emit — `SELECT DISTINCT … FROM … WHERE …`, `UNION`, correlated
//!   `EXISTS`, scalar `COUNT(*)` subqueries, `BETWEEN`, `REGEXP_LIKE`
//!   (POSIX ERE, per Oracle), `||` concatenation, 3-valued NULL logic;
//! * a **renderer** ([`render`]) producing the textual SQL of the paper's
//!   Tables 3–6, and a **parser** ([`parser`]) accepting it back;
//! * a **planner** ([`plan`]) that picks join order by estimated
//!   cardinality and turns structural-join predicates into B-tree index
//!   probes (equality and `BETWEEN` ranges on `dewey_pos`);
//! * an **executor** ([`exec`]) implementing an index-nested-loop pipeline
//!   with early-exit `EXISTS`, plus `DISTINCT`/`UNION`/`ORDER BY`.
//!
//! # Example
//! ```
//! use relstore::{ColType, Database, TableSchema, Value};
//! use sqlexec::Executor;
//! let mut db = Database::new();
//! db.create_table(TableSchema::new("t", &[("id", ColType::Int)])).unwrap();
//! db.table_mut("t").unwrap().insert(vec![Value::Int(7)]).unwrap();
//! let exec = Executor::new(&db);
//! let rs = exec.query("select t.id from t where t.id > 3").unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
//! ```

pub mod ast;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod par_cost;
pub mod parser;
pub mod plan;
pub mod render;

pub use ast::{ArithOp, CmpOp, Expr, OrderKey, Projection, Select, SelectStmt, TableRef};
pub use exec::{
    cache_poison_recoveries, clear_filter_caches, compare, filter_caches_enabled, naive_select,
    parallel_mode, set_filter_caches_enabled, set_parallel_mode, CancelToken, ExecStats, Executor,
    OpStats, ParallelMode, QueryLimits, ResultSet,
};
pub use explain::{explain_analyze, explain_analyze_with_limits, explain_stmt};
pub use par_cost::{set_cost_override, CostModel, ParDecision};
pub use parser::parse_sql;
pub use plan::{
    learned_regex_selectivity, merge_mode, note_regex_selectivity, qerror, set_merge_mode,
    set_stats_enabled, stats_enabled, ExecError, MergeMode, SelectPlan,
};
pub use render::render_stmt;
