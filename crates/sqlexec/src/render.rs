//! Render the SQL AST to text.
//!
//! The output mirrors the dialect of the paper's translation examples
//! (Tables 3–6): Oracle-flavoured `REGEXP_LIKE(...)`, `||` concatenation,
//! `exists (select null from ...)` predicates, and a trailing `order by`.

use crate::ast::{Expr, OrderKey, Select, SelectStmt};

/// Render a full statement.
pub fn render_stmt(stmt: &SelectStmt) -> String {
    let mut out = String::new();
    for (i, branch) in stmt.branches.iter().enumerate() {
        if i > 0 {
            out.push_str("\nunion\n");
        }
        render_select(branch, &mut out);
    }
    if !stmt.order_by.is_empty() {
        out.push_str(" order by ");
        render_order(&stmt.order_by, &mut out);
    }
    out
}

/// Render one `SELECT` block.
pub fn render_select(sel: &Select, out: &mut String) {
    out.push_str("select ");
    if sel.distinct {
        out.push_str("distinct ");
    }
    for (i, p) in sel.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_expr(&p.expr, out);
        if let Some(a) = &p.alias {
            out.push_str(" as ");
            out.push_str(a);
        }
    }
    out.push_str(" from ");
    for (i, t) in sel.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.table);
        if t.alias != t.table {
            out.push(' ');
            out.push_str(&t.alias);
        }
    }
    if let Some(w) = &sel.where_clause {
        out.push_str(" where ");
        render_expr(w, out);
    }
}

fn render_order(keys: &[OrderKey], out: &mut String) {
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        render_expr(&k.expr, out);
        if k.desc {
            out.push_str(" desc");
        }
    }
}

/// Binding strength for parenthesization decisions.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Or(_) => 1,
        Expr::And(_) => 2,
        Expr::Not(_) => 3,
        Expr::Cmp { .. } | Expr::Between { .. } | Expr::IsNull { .. } => 4,
        Expr::Concat(..) => 5,
        Expr::Arith { op, .. } => match op {
            crate::ast::ArithOp::Add | crate::ast::ArithOp::Sub => 6,
            crate::ast::ArithOp::Mul | crate::ast::ArithOp::Div => 7,
        },
        _ => 8,
    }
}

fn render_child(child: &Expr, parent_prec: u8, out: &mut String) {
    if precedence(child) < parent_prec {
        out.push('(');
        render_expr(child, out);
        out.push(')');
    } else {
        render_expr(child, out);
    }
}

/// Render an expression.
pub fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                out.push_str(q);
                out.push('.');
            }
            out.push_str(name);
        }
        Expr::Literal(v) => out.push_str(&v.to_string()),
        Expr::Cmp { op, lhs, rhs } => {
            render_child(lhs, 5, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            render_child(rhs, 5, out);
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            render_child(expr, 5, out);
            if *negated {
                out.push_str(" not");
            }
            out.push_str(" between ");
            render_child(lo, 5, out);
            out.push_str(" and ");
            render_child(hi, 5, out);
        }
        Expr::And(xs) => {
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                render_child(x, 2, out);
            }
        }
        Expr::Or(xs) => {
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" or ");
                }
                render_child(x, 1, out);
            }
        }
        Expr::Not(x) => {
            out.push_str("not ");
            render_child(x, 4, out);
        }
        Expr::Exists(sel) => {
            out.push_str("exists (");
            render_select(sel, out);
            out.push(')');
        }
        Expr::ScalarSubquery(sel) => {
            out.push('(');
            render_select(sel, out);
            out.push(')');
        }
        Expr::RegexpLike { subject, pattern } => {
            out.push_str("REGEXP_LIKE(");
            render_expr(subject, out);
            out.push_str(", '");
            out.push_str(&pattern.replace('\'', "''"));
            out.push_str("')");
        }
        Expr::Concat(a, b) => {
            render_child(a, 5, out);
            out.push_str(" || ");
            render_child(b, 5, out);
        }
        Expr::Arith { op, lhs, rhs } => {
            let prec = precedence(e);
            render_child(lhs, prec, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            // Right operand needs parens at equal precedence for - and /.
            render_child(rhs, prec + 1, out);
        }
        Expr::IsNull { expr, negated } => {
            render_child(expr, 5, out);
            out.push_str(if *negated { " is not null" } else { " is null" });
        }
        Expr::CountStar => out.push_str("count(*)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Projection, TableRef};
    use relstore::Value;

    #[test]
    fn renders_paper_style_statement() {
        // Shape of Table 3 (2): /A[@x=3]/B
        let sel = Select {
            distinct: true,
            projections: vec![
                Projection::col("B", "id"),
                Projection::col("B", "dewey_pos"),
            ],
            from: vec![
                TableRef::new("A", "A"),
                TableRef::new("B", "B"),
                TableRef::new("Paths", "B_Paths"),
            ],
            where_clause: Some(
                Expr::eq(Expr::column("B", "path_id"), Expr::column("B_Paths", "id"))
                    .and(Expr::eq(Expr::column("B_Paths", "path"), Expr::str("/A/B")))
                    .and(Expr::eq(
                        Expr::column("B", "par_id"),
                        Expr::column("A", "id"),
                    ))
                    .and(Expr::eq(Expr::column("A", "x"), Expr::int(3))),
            ),
        };
        let stmt = SelectStmt {
            branches: vec![sel],
            order_by: vec![OrderKey {
                expr: Expr::column("B", "dewey_pos"),
                desc: false,
            }],
        };
        let sql = render_stmt(&stmt);
        assert_eq!(
            sql,
            "select distinct B.id, B.dewey_pos from A, B, Paths B_Paths \
             where B.path_id = B_Paths.id and B_Paths.path = '/A/B' \
             and B.par_id = A.id and A.x = 3 order by B.dewey_pos"
        );
    }

    #[test]
    fn parenthesizes_or_inside_and() {
        let e = Expr::And(vec![
            Expr::Or(vec![Expr::int(1), Expr::int(2)]),
            Expr::int(3),
        ]);
        let mut s = String::new();
        render_expr(&e, &mut s);
        assert_eq!(s, "(1 or 2) and 3");
    }

    #[test]
    fn renders_concat_and_between() {
        let e = Expr::Between {
            expr: Box::new(Expr::column("F", "dewey_pos")),
            lo: Box::new(Expr::column("B", "dewey_pos")),
            hi: Box::new(Expr::Concat(
                Box::new(Expr::column("B", "dewey_pos")),
                Box::new(Expr::Literal(Value::Bytes(vec![0xFF]))),
            )),
            negated: false,
        };
        let mut s = String::new();
        render_expr(&e, &mut s);
        assert_eq!(
            s,
            "F.dewey_pos between B.dewey_pos and B.dewey_pos || x'FF'"
        );
    }

    #[test]
    fn renders_regexp_like_with_quotes() {
        let e = Expr::RegexpLike {
            subject: Box::new(Expr::column("P", "path")),
            pattern: "^/A(/[^/]+)*/F$".to_string(),
        };
        let mut s = String::new();
        render_expr(&e, &mut s);
        assert_eq!(s, "REGEXP_LIKE(P.path, '^/A(/[^/]+)*/F$')");
    }

    #[test]
    fn renders_union_and_not() {
        let mk = |t: &str| Select {
            distinct: false,
            projections: vec![Projection::col(t, "id")],
            from: vec![TableRef::new(t, t)],
            where_clause: Some(Expr::Not(Box::new(Expr::cmp(
                CmpOp::Gt,
                Expr::column(t, "id"),
                Expr::int(5),
            )))),
        };
        let stmt = SelectStmt {
            branches: vec![mk("D"), mk("E")],
            order_by: vec![],
        };
        let sql = render_stmt(&stmt);
        assert!(sql.contains("\nunion\n"));
        assert!(sql.contains("not D.id > 5"));
    }
}
