//! SQL abstract syntax tree.
//!
//! Covers the fragment the PPF translator (and the baselines) emit:
//! `SELECT [DISTINCT] … FROM … WHERE … [ORDER BY …]`, `UNION`, correlated
//! `EXISTS(…)` subqueries, scalar `(SELECT COUNT(*) …)` subqueries,
//! `BETWEEN`, `REGEXP_LIKE`, the `||` concatenation operator, and basic
//! arithmetic. The AST renders to SQL text ([`crate::render`]) and is what
//! the executor consumes directly.

use relstore::Value;

/// A full statement: one select or a `UNION` chain, with a statement-level
/// `ORDER BY` (as in the paper's translations, which order the final result
/// by `dewey_pos` for document order).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub branches: Vec<Select>,
    pub order_by: Vec<OrderKey>,
}

impl SelectStmt {
    /// A statement with a single branch.
    pub fn single(select: Select) -> SelectStmt {
        SelectStmt {
            branches: vec![select],
            order_by: Vec::new(),
        }
    }
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub projections: Vec<Projection>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
}

/// A projected expression with an optional output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl Projection {
    pub fn col(qualifier: &str, name: &str) -> Projection {
        Projection {
            expr: Expr::column(qualifier, name),
            alias: None,
        }
    }
}

/// A table in the `FROM` clause with its binding alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: String,
}

impl TableRef {
    pub fn new(table: &str, alias: &str) -> TableRef {
        TableRef {
            table: table.to_string(),
            alias: alias.to_string(),
        }
    }
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub desc: bool,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `alias.column` (qualifier optional only in hand-written SQL; the
    /// translator always qualifies).
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    /// `EXISTS (select …)` — may be correlated with outer aliases.
    Exists(Box<Select>),
    /// `(select …)` used as a scalar (first column of the single row;
    /// NULL when empty). With a `COUNT(*)` projection this is how position
    /// predicates translate.
    ScalarSubquery(Box<Select>),
    /// `REGEXP_LIKE(subject, 'pattern')` — POSIX ERE, per Oracle 10g.
    RegexpLike {
        subject: Box<Expr>,
        pattern: String,
    },
    /// Binary string / text concatenation `a || b`.
    Concat(Box<Expr>, Box<Expr>),
    Arith {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `COUNT(*)` — only valid as a projection.
    CountStar,
}

impl Expr {
    pub fn column(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    pub fn str(v: &str) -> Expr {
        Expr::Literal(Value::Str(v.to_string()))
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Conjoin two optional predicates.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(a.and(b)),
        }
    }

    /// `self AND other`, flattening nested ANDs.
    pub fn and(self, other: Expr) -> Expr {
        let mut parts = match self {
            Expr::And(xs) => xs,
            x => vec![x],
        };
        match other {
            Expr::And(ys) => parts.extend(ys),
            y => parts.push(y),
        }
        Expr::And(parts)
    }

    /// `self OR other`, flattening nested ORs.
    pub fn or(self, other: Expr) -> Expr {
        let mut parts = match self {
            Expr::Or(xs) => xs,
            x => vec![x],
        };
        match other {
            Expr::Or(ys) => parts.extend(ys),
            y => parts.push(y),
        }
        Expr::Or(parts)
    }

    /// All alias qualifiers referenced by this expression, *excluding*
    /// those bound inside nested subqueries (their FROM aliases shadow).
    pub fn free_aliases(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column { qualifier, .. } => {
                if let Some(q) = qualifier {
                    if !out.contains(q) {
                        out.push(q.clone());
                    }
                }
            }
            Expr::Literal(_) | Expr::CountStar => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.free_aliases(out);
                rhs.free_aliases(out);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.free_aliases(out);
                lo.free_aliases(out);
                hi.free_aliases(out);
            }
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    x.free_aliases(out);
                }
            }
            Expr::Not(x) | Expr::IsNull { expr: x, .. } => x.free_aliases(out),
            Expr::Concat(a, b) => {
                a.free_aliases(out);
                b.free_aliases(out);
            }
            Expr::RegexpLike { subject, .. } => subject.free_aliases(out),
            Expr::Exists(sel) | Expr::ScalarSubquery(sel) => {
                let bound: Vec<&str> = sel.from.iter().map(|t| t.alias.as_str()).collect();
                let mut inner = Vec::new();
                if let Some(w) = &sel.where_clause {
                    w.free_aliases(&mut inner);
                }
                for p in &sel.projections {
                    p.expr.free_aliases(&mut inner);
                }
                for q in inner {
                    if !bound.contains(&q.as_str()) && !out.contains(&q) {
                        out.push(q);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens() {
        let e = Expr::int(1).and(Expr::int(2)).and(Expr::int(3));
        match e {
            Expr::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_aliases_respects_subquery_scope() {
        // EXISTS(select from F where F.x = B.y): only B is free.
        let sub = Select {
            distinct: false,
            projections: vec![Projection {
                expr: Expr::Literal(Value::Null),
                alias: None,
            }],
            from: vec![TableRef::new("F", "F")],
            where_clause: Some(Expr::eq(Expr::column("F", "x"), Expr::column("B", "y"))),
        };
        let e = Expr::Exists(Box::new(sub));
        let mut out = Vec::new();
        e.free_aliases(&mut out);
        assert_eq!(out, vec!["B".to_string()]);
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Ge.flip(), CmpOp::Le);
    }
}
