//! Query planning: join ordering, index selection, predicate placement.
//!
//! The planner turns one [`Select`] into a left-deep pipeline of
//! [`Step`]s. Each step scans one `FROM` alias, either fully or through a
//! B-tree access path whose probe values may reference the aliases bound by
//! earlier steps (index nested-loop join) or by an outer query
//! (correlated `EXISTS`). Every `WHERE` conjunct is consumed exactly once:
//! as an access-path driver or as a residual filter at the earliest step
//! where all of its referenced aliases are bound.
//!
//! This mirrors what a commercial optimizer does for the paper's queries:
//! all the structural joins (`par_id = id`, `path_id = id`, `dewey_pos
//! BETWEEN …`) become index probes on the join-column indexes the loader
//! creates (§3.1).

use std::collections::BTreeSet;

use crate::ast::{CmpOp, Expr, Select};
use relstore::{Database, Table, Value};

/// Planner/executor error, classified by lifecycle phase so callers (the
/// engine, the shell, a future network front end) can distinguish "your
/// SQL is wrong" from "your query ran out of budget" from "you cancelled
/// it" without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The SQL text failed to parse ([`crate::Executor::query`] only).
    Parse(String),
    /// Planning failed: unknown table, duplicate alias, malformed shape.
    Plan(String),
    /// Runtime evaluation failed: bad types, unknown column, overflow.
    Exec(String),
    /// A resource budget was exceeded (deadline, row budget).
    Limit(String),
    /// The query's [`crate::CancelToken`] fired.
    Cancelled(String),
}

impl ExecError {
    pub fn parse(msg: impl Into<String>) -> ExecError {
        ExecError::Parse(msg.into())
    }

    pub fn plan(msg: impl Into<String>) -> ExecError {
        ExecError::Plan(msg.into())
    }

    pub fn exec(msg: impl Into<String>) -> ExecError {
        ExecError::Exec(msg.into())
    }

    pub fn limit(msg: impl Into<String>) -> ExecError {
        ExecError::Limit(msg.into())
    }

    pub fn cancelled(msg: impl Into<String>) -> ExecError {
        ExecError::Cancelled(msg.into())
    }

    /// The bare message, without the phase prefix.
    pub fn message(&self) -> &str {
        match self {
            ExecError::Parse(m)
            | ExecError::Plan(m)
            | ExecError::Exec(m)
            | ExecError::Limit(m)
            | ExecError::Cancelled(m) => m,
        }
    }

    /// Short lifecycle-phase tag (`parse` / `plan` / `exec` / `limit` /
    /// `cancelled`), for counters and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::Parse(_) => "parse",
            ExecError::Plan(_) => "plan",
            ExecError::Exec(_) => "exec",
            ExecError::Limit(_) => "limit",
            ExecError::Cancelled(_) => "cancelled",
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The parser's own Display already carries its prefix.
            ExecError::Parse(m) => write!(f, "{m}"),
            ExecError::Plan(m) => write!(f, "plan error: {m}"),
            ExecError::Exec(m) => write!(f, "execution error: {m}"),
            ExecError::Limit(m) => write!(f, "resource limit exceeded: {m}"),
            ExecError::Cancelled(m) => write!(f, "query cancelled: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// How one step reads its table.
#[derive(Debug, Clone)]
pub enum Access {
    /// Scan every row.
    FullScan,
    /// Probe a B-tree index with equality on its leading columns. The key
    /// expressions may reference previously bound / outer aliases.
    IndexEq {
        /// Index position within `Table::indexes()`.
        index: usize,
        keys: Vec<Expr>,
    },
    /// Range-scan a B-tree index on its first column.
    IndexRange {
        index: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
    },
    /// Build-once hash table on an unindexed column, probed with the key
    /// expression per outer row (classic hash join, build side = this
    /// table).
    HashEq { column: usize, key: Expr },
    /// Sort-merge range probe over a flattened B-tree index: the executor
    /// materializes the index once as a sorted array and advances a
    /// monotonic cursor across outer invocations instead of descending
    /// the B-tree per probe. Chosen for two-sided ranges (the Dewey
    /// descendant/ancestor windows of the paper's structural joins) when
    /// both the outer cardinality and this table are large — outer rows
    /// arriving in document order turn the whole join into one
    /// staircase-style forward pass.
    MergeRange {
        index: usize,
        lo: Option<(Expr, bool)>,
        hi: Option<(Expr, bool)>,
    },
}

/// One pipeline step: bind `alias` by scanning `table` via `access`, then
/// keep rows passing all `residuals`.
///
/// `Arc` rather than `Rc` so a whole [`SelectPlan`] is `Send + Sync`:
/// partition workers execute the coordinator's plan directly instead of
/// re-planning per thread.
#[derive(Debug, Clone)]
pub struct Step {
    pub alias: std::sync::Arc<str>,
    pub table: String,
    pub access: Access,
    pub residuals: Vec<Expr>,
    /// Planner's guess at rows the access path fetches per invocation
    /// (compare with `OpStats::rows_in / invocations`).
    pub est_fetched: f64,
    /// Planner's guess at rows surviving the residuals per invocation
    /// (compare with `OpStats::rows_out / invocations`).
    pub est_rows: f64,
}

/// A compiled plan for one `SELECT` block.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    pub steps: Vec<Step>,
    /// Predicates that could not be attached to any step (e.g. referencing
    /// only outer aliases); evaluated once per full binding.
    pub late_filters: Vec<Expr>,
}

/// Fallback selectivity guesses, used when table statistics are absent
/// (nothing analyzed for the table's current `(uid, version)`) or when
/// statistics consumption is disabled via [`set_stats_enabled`]. The
/// absolute values matter less than the ordering: equality < range <
/// regex < everything.
mod sel {
    pub const EQ_UNINDEXED: f64 = 0.1;
    /// A bounded interval (Dewey descendant window): very tight.
    pub const RANGE_TWO_SIDED: f64 = 0.005;
    /// A half-open range: barely selective.
    pub const RANGE_ONE_SIDED: f64 = 0.5;
    pub const REGEX: f64 = 0.05;
    pub const OTHER: f64 = 0.5;
}

thread_local! {
    static STATS_ENABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Enable or disable consumption of `relstore::stats` table statistics
/// by this thread's planner, returning the previous setting. Disabled,
/// every estimate falls back to the fixed `sel::*` constants and the
/// legacy merge thresholds — the pre-statistics planner, kept for A/B
/// benchmarking (`plan_quality`) and regression triage.
pub fn set_stats_enabled(on: bool) -> bool {
    STATS_ENABLED.with(|c| c.replace(on))
}

/// Whether this thread's planner consumes table statistics.
pub fn stats_enabled() -> bool {
    STATS_ENABLED.with(|c| c.get())
}

/// The q-error of one estimate: `max(est, act) / min(est, act)`, both
/// floored at half a row so empty-vs-empty reads as a perfect 1.0
/// instead of dividing by zero. ≥ 1.0 by construction; 1.0 is exact.
pub fn qerror(est: f64, act: f64) -> f64 {
    let e = est.max(0.5);
    let a = act.max(0.5);
    (e / a).max(a / e)
}

/// Learned regex selectivities: observed survivor ratios of
/// `REGEXP_LIKE` path-filter scans, EWMA'd per pattern text. Populated
/// by the executor ([`note_regex_selectivity`]) every time a filter
/// scan actually runs, consumed by [`estimate_access`] the next time a
/// plan prices that pattern — the one feedback loop in the planner
/// (histograms cannot see into a regex).
fn regex_sel_map() -> &'static std::sync::Mutex<std::collections::HashMap<String, f64>> {
    static MAP: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<String, f64>>> =
        std::sync::OnceLock::new();
    MAP.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Patterns retained before the learned-selectivity map resets
/// (bounds memory under adversarial pattern churn).
const REGEX_SEL_CAP: usize = 4096;

/// EWMA weight of one new survivor-ratio observation.
const REGEX_SEL_ALPHA: f64 = 0.3;

/// Record that a `REGEXP_LIKE(col, pattern)` scan kept `ratio` of the
/// rows it examined (`survivors / scanned`, in `[0, 1]`).
pub fn note_regex_selectivity(pattern: &str, ratio: f64) {
    let ratio = ratio.clamp(1e-4, 1.0);
    let mut map = regex_sel_map()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if map.len() >= REGEX_SEL_CAP && !map.contains_key(pattern) {
        map.clear();
    }
    map.entry(pattern.to_string())
        .and_modify(|v| *v += REGEX_SEL_ALPHA * (ratio - *v))
        .or_insert(ratio);
}

/// The learned survivor ratio for a pattern, if any scan has reported.
pub fn learned_regex_selectivity(pattern: &str) -> Option<f64> {
    regex_sel_map()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .get(pattern)
        .copied()
}

/// How the planner decides between the B-tree range probe and the
/// sort-merge cursor for two-sided ranges. `Auto` applies the cardinality
/// thresholds; the forced modes exist for equivalence tests and A/B
/// benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeMode {
    #[default]
    Auto,
    ForceOff,
    ForceOn,
}

thread_local! {
    static MERGE_MODE: std::cell::Cell<MergeMode> = const { std::cell::Cell::new(MergeMode::Auto) };
}

/// Set the structural-join strategy override for plans built on this
/// thread (executors are single-threaded). Returns the previous mode.
pub fn set_merge_mode(mode: MergeMode) -> MergeMode {
    MERGE_MODE.with(|m| m.replace(mode))
}

/// The current structural-join strategy override.
pub fn merge_mode() -> MergeMode {
    MERGE_MODE.with(|m| m.get())
}

/// Legacy `Auto` thresholds (used when no statistics exist for the
/// table): a merge cursor only pays off when the outer side re-probes
/// often enough to amortize flattening the index (outer cardinality
/// estimate) and the probed table is big enough that B-tree descents
/// are the dominant cost.
const MERGE_MIN_OUTER: f64 = 32.0;
const MERGE_MIN_TABLE: usize = 256;

/// Decide merge vs. index nested-loop for a two-sided range on `table`,
/// given the planner's estimate of how many outer rows will drive the
/// probe. With statistics available, compare the two strategies' actual
/// cost models: index-NL pays one B-tree descent (`log₂ n + 1`) per
/// outer row; merge pays one flattening pass over the table (`n`) plus
/// one amortized cursor advance per outer row. The legacy constants are
/// the n = 256 corner of the same inequality (crossover at
/// `est_outer = 32`), so un-analyzed tables behave exactly as before.
fn want_merge(table: &Table, two_sided: bool, est_outer: f64) -> bool {
    match merge_mode() {
        MergeMode::ForceOff => false,
        MergeMode::ForceOn => two_sided,
        MergeMode::Auto => {
            if !two_sided {
                return false;
            }
            let st = if stats_enabled() {
                relstore::stats::lookup(table)
            } else {
                None
            };
            match st {
                Some(st) => {
                    let n = st.rows.max(1) as f64;
                    est_outer * (n.log2() + 1.0) > n + est_outer
                }
                None => est_outer >= MERGE_MIN_OUTER && table.len() >= MERGE_MIN_TABLE,
            }
        }
    }
}

/// Plan a select given the aliases already bound by outer queries
/// (`outer` pairs each alias with its table so probe expressions can be
/// type-checked). Inner FROM aliases shadow same-named outer aliases.
pub fn plan_select(
    db: &Database,
    select: &Select,
    outer: &[(String, String)],
) -> Result<SelectPlan, ExecError> {
    for tref in &select.from {
        db.require(&tref.table)
            .map_err(|e| ExecError::plan(e.to_string()))?;
    }
    // Duplicate aliases would make column references ambiguous.
    {
        let mut seen = BTreeSet::new();
        for t in &select.from {
            if !seen.insert(&t.alias) {
                return Err(ExecError::plan(format!("duplicate alias `{}`", t.alias)));
            }
        }
    }
    // An inner FROM alias shadows an outer binding: the outer one must not
    // count as pre-bound in this scope.
    let outer: Vec<(String, String)> = outer
        .iter()
        .filter(|(a, _)| !select.from.iter().any(|t| &t.alias == a))
        .cloned()
        .collect();
    let outer = &outer[..];

    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        flatten_and(w, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    // Pick the join order: exhaustive left-deep enumeration for small
    // FROM lists (cost = sum of intermediate-result cardinality products),
    // greedy beyond that.
    let order = choose_order(db, select, &conjuncts, outer);

    let mut bound: Vec<String> = outer.iter().map(|(a, _)| a.clone()).collect();
    let mut steps: Vec<Step> = Vec::new();
    // Running estimate of rows flowing into each step (product of the
    // preceding steps' cardinalities) — drives the merge-join decision.
    let mut est_outer = 1.0f64;
    for idx in order {
        let tref = &select.from[idx];
        let table = db.table(&tref.table).expect("validated above");
        // Estimate before build_step consumes conjuncts from `used`.
        let (est_fetched, est_rows, _) = estimate_access(
            db,
            select,
            outer,
            table,
            &tref.alias,
            &conjuncts,
            &used,
            &bound,
        );
        let mut step = build_step(
            db,
            select,
            outer,
            table,
            &tref.table,
            &tref.alias,
            &mut conjuncts,
            &mut used,
            &bound,
            est_outer,
        );
        step.est_fetched = est_fetched;
        step.est_rows = est_rows;
        est_outer = (est_outer * est_rows).max(1.0);
        bound.push(tref.alias.clone());
        steps.push(step);
    }

    // Whatever conjuncts remain (those referencing no step alias at all,
    // e.g. purely-outer correlation filters or constant predicates) run as
    // late filters — attach to the last step if possible so they at least
    // prune during the scan.
    let mut late = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if !used[i] {
            late.push(c.clone());
        }
    }
    if let (Some(last), false) = (steps.last_mut(), late.is_empty()) {
        last.residuals.append(&mut late);
    }
    Ok(SelectPlan {
        steps,
        late_filters: late,
    })
}

/// Coarse type classes for hash-join compatibility: Int and Float unify
/// (the total order already equates 2 and 2.0); Str does not unify with
/// numbers (SQL would implicitly convert, which a hash lookup cannot).
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum TypeClass {
    Numeric,
    Text,
    Binary,
    Boolean,
}

fn type_class(ty: relstore::ColType) -> TypeClass {
    match ty {
        relstore::ColType::Int | relstore::ColType::Float => TypeClass::Numeric,
        relstore::ColType::Str => TypeClass::Text,
        relstore::ColType::Bytes => TypeClass::Binary,
        relstore::ColType::Bool => TypeClass::Boolean,
    }
}

/// Type class of a probe expression, when statically known: literals, and
/// columns of aliases bound in this FROM list or in an outer query.
fn probe_type_class(
    db: &Database,
    select: &Select,
    outer: &[(String, String)],
    e: &Expr,
) -> Option<TypeClass> {
    match e {
        Expr::Literal(v) => v.col_type().map(type_class),
        Expr::Column {
            qualifier: Some(q),
            name,
        } => {
            let table_name = select
                .from
                .iter()
                .find(|t| &t.alias == q)
                .map(|t| t.table.as_str())
                .or_else(|| outer.iter().find(|(a, _)| a == q).map(|(_, t)| t.as_str()))?;
            let table = db.table(table_name)?;
            let ci = table.schema.col(name)?;
            Some(type_class(table.schema.columns[ci].ty))
        }
        // `a || b`: binary concat stays binary, text concat stays text.
        Expr::Concat(a, b) => {
            let ca = probe_type_class(db, select, outer, a)?;
            let cb = probe_type_class(db, select, outer, b)?;
            if ca == cb {
                Some(ca)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Does the expression contain an unqualified column reference? Those are
/// invisible to alias tracking, so conjuncts containing them must only run
/// once every table is bound.
fn has_unqualified(e: &Expr) -> bool {
    match e {
        Expr::Column {
            qualifier: None, ..
        } => true,
        Expr::Column { .. } | Expr::Literal(_) | Expr::CountStar => false,
        Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
            has_unqualified(lhs) || has_unqualified(rhs)
        }
        Expr::Between { expr, lo, hi, .. } => {
            has_unqualified(expr) || has_unqualified(lo) || has_unqualified(hi)
        }
        Expr::And(xs) | Expr::Or(xs) => xs.iter().any(has_unqualified),
        Expr::Not(x) | Expr::IsNull { expr: x, .. } => has_unqualified(x),
        Expr::Concat(a, b) => has_unqualified(a) || has_unqualified(b),
        Expr::RegexpLike { subject, .. } => has_unqualified(subject),
        // Subqueries resolve their own columns at execution time.
        Expr::Exists(_) | Expr::ScalarSubquery(_) => false,
    }
}

fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(xs) => {
            for x in xs {
                flatten_and(x, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Aliases referenced by `e` (free, i.e. not bound inside its subqueries).
fn refs(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.free_aliases(&mut out);
    out
}

/// Is every alias referenced by `e` either `this` or in `bound`?
fn evaluable(e: &Expr, this: &str, bound: &[String]) -> bool {
    refs(e)
        .iter()
        .all(|a| a == this || bound.iter().any(|b| b == a))
}

/// `expr` is a column of `alias`?
fn col_of<'e>(e: &'e Expr, alias: &str) -> Option<&'e str> {
    match e {
        Expr::Column {
            qualifier: Some(q),
            name,
        } if q == alias => Some(name),
        _ => None,
    }
}

/// Decompose a conjunct as `alias.col <op> probe` where `probe` does not
/// reference `alias` (flipping the comparison if needed).
fn as_probe<'e>(e: &'e Expr, alias: &str) -> Option<(&'e str, CmpOp, Expr)> {
    if let Expr::Cmp { op, lhs, rhs } = e {
        if let Some(col) = col_of(lhs, alias) {
            if !refs(rhs).iter().any(|a| a == alias) {
                return Some((col, *op, (**rhs).clone()));
            }
        }
        if let Some(col) = col_of(rhs, alias) {
            if !refs(lhs).iter().any(|a| a == alias) {
                return Some((col, op.flip(), (**lhs).clone()));
            }
        }
    }
    None
}

/// Decompose `alias.col BETWEEN lo AND hi` (non-negated) with foreign
/// bounds.
fn as_between<'e>(e: &'e Expr, alias: &str) -> Option<(&'e str, Expr, Expr)> {
    if let Expr::Between {
        expr,
        lo,
        hi,
        negated: false,
    } = e
    {
        if let Some(col) = col_of(expr, alias) {
            let foreign = |x: &Expr| !refs(x).iter().any(|a| a == alias);
            if foreign(lo) && foreign(hi) {
                return Some((col, (**lo).clone(), (**hi).clone()));
            }
        }
    }
    None
}

/// Join-order selection. For n ≤ `EXHAUSTIVE_LIMIT` aliases, enumerate
/// every left-deep order and minimize Σ_k Π_{j≤k} card_j (the classic
/// cumulative-intermediate-size cost); otherwise greedy by next-step
/// cardinality. The estimates are join-aware: a table probed through a
/// two-sided Dewey range or an indexed equality becomes cheap once its
/// driving alias is bound.
fn choose_order(
    db: &Database,
    select: &Select,
    conjuncts: &[Expr],
    outer: &[(String, String)],
) -> Vec<usize> {
    const EXHAUSTIVE_LIMIT: usize = 6;
    let n = select.from.len();
    let used = vec![false; conjuncts.len()];
    let est = |idx: usize, bound: &[String]| -> (f64, f64) {
        let tref = &select.from[idx];
        let table = db.table(&tref.table).expect("validated by caller");
        let (fetched, card, regexes) = estimate_access(
            db,
            select,
            outer,
            table,
            &tref.alias,
            conjuncts,
            &used,
            bound,
        );
        // Regular-expression filters are much costlier per row than
        // comparisons; charge them into the fetch cost so orders that
        // evaluate regexes over fewer rows win.
        (fetched * (1.0 + 2.0 * regexes as f64), card)
    };

    if n <= EXHAUSTIVE_LIMIT {
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut remaining: Vec<usize> = (0..n).collect();
        /// `(fetched, cardinality)` estimate for placing table `idx`
        /// after the already-bound aliases.
        type EstFn<'a> = dyn Fn(usize, &[String]) -> (f64, f64) + 'a;
        #[allow(clippy::too_many_arguments)]
        fn recurse(
            est: &EstFn<'_>,
            select: &Select,
            order: &mut Vec<usize>,
            remaining: &mut Vec<usize>,
            bound: &mut Vec<String>,
            product: f64,
            cost: f64,
            best: &mut Option<(f64, Vec<usize>)>,
        ) {
            if let Some((b, _)) = best {
                if cost >= *b {
                    return; // prune
                }
            }
            if remaining.is_empty() {
                if best.as_ref().map(|(b, _)| cost < *b).unwrap_or(true) {
                    *best = Some((cost, order.clone()));
                }
                return;
            }
            for i in 0..remaining.len() {
                let idx = remaining.remove(i);
                // Cost pays for the rows the access path fetches at this
                // nesting depth; downstream fan-out uses the post-filter
                // cardinality.
                let (fetched, card) = est(idx, bound);
                let cost2 = cost + product * fetched;
                let product2 = product * card;
                order.push(idx);
                bound.push(select.from[idx].alias.clone());
                recurse(est, select, order, remaining, bound, product2, cost2, best);
                bound.pop();
                order.pop();
                remaining.insert(i, idx);
            }
        }
        let outer_aliases: Vec<String> = outer.iter().map(|(a, _)| a.clone()).collect();
        let mut bound: Vec<String> = outer_aliases.clone();
        recurse(
            &est,
            select,
            &mut order,
            &mut remaining,
            &mut bound,
            1.0,
            0.0,
            &mut best,
        );
        return best.expect("n ≥ 1 orders enumerated").1;
    }

    // Greedy fallback for wide FROM lists.
    let mut bound: Vec<String> = outer.iter().map(|(a, _)| a.clone()).collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                est(a, &bound)
                    .0
                    .partial_cmp(&est(b, &bound).0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty");
        out.push(idx);
        bound.push(select.from[idx].alias.clone());
        remaining.remove(pos);
    }
    out
}

/// `expr` is a plain literal value?
fn literal_of(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

/// One column's accumulated range bounds during estimation.
struct RangeEst {
    col: usize,
    lo: bool,
    hi: bool,
    lo_lit: Option<Value>,
    hi_lit: Option<Value>,
    /// Alias a correlated (non-literal) bound references — the table
    /// driving a Dewey window probe.
    driver: Option<String>,
    indexed: bool,
}

/// Cost estimate for scanning `alias` next: `fetched` approximates the
/// rows the chosen access path materializes (mirroring `build_step`'s
/// priority: full-prefix index equality, then an indexed range, then a
/// full scan), `card` the rows surviving all residual filters.
///
/// When statistics exist for the table's current `(uid, version)` (and
/// [`stats_enabled`] holds), selectivities come from equi-depth
/// histograms: literal equality probes read the containing bucket's
/// rows-per-distinct, correlated probes use the column-wide average
/// depth, literal range/BETWEEN bounds interpolate cumulative bucket
/// mass, correlated two-sided windows on byte columns use the measured
/// Dewey prefix fanout, and regex filters use survivor ratios learned
/// from prior scans. Otherwise every selectivity falls back to the
/// fixed `sel::*` constants — the pre-statistics planner.
#[allow(clippy::too_many_arguments)]
fn estimate_access(
    db: &Database,
    select: &Select,
    outer: &[(String, String)],
    table: &Table,
    alias: &str,
    conjuncts: &[Expr],
    used: &[bool],
    bound: &[String],
) -> (f64, f64, usize) {
    let rows = table.len().max(1) as f64;
    let stats = if stats_enabled() {
        relstore::stats::lookup(table)
    } else {
        None
    };
    let col_stats = |ci: usize| {
        stats
            .as_ref()
            .and_then(|s| s.columns.get(ci).map(|c| (c, s.rows)))
    };
    // Resolve an alias (FROM list first, then the outer context) to its
    // table — for sizing the driving side of a correlated window probe.
    let table_of_alias = |a: &str| -> Option<&Table> {
        let name = select
            .from
            .iter()
            .find(|t| t.alias == a)
            .map(|t| t.table.as_str())
            .or_else(|| {
                outer
                    .iter()
                    .find(|(al, _)| al == a)
                    .map(|(_, t)| t.as_str())
            })?;
        db.table(name)
    };
    // The alias a correlated bound expression is driven by.
    let driver_of = |e: &Expr| -> Option<String> {
        if literal_of(e).is_some() {
            None
        } else {
            refs(e).into_iter().next()
        }
    };
    // A near-zero (not exact-zero) floor for stats-derived fractions: an
    // out-of-domain literal may honestly estimate empty, but keep cost
    // products totally ordered. A twentieth of a row — matching the
    // final `card.max(0.05)` — so sub-row expectations (e.g. mostly-empty
    // descendant windows) stay visible to the join-order search. The
    // constant fallbacks stay unfloored so disabling stats reproduces
    // the legacy planner bit-for-bit.
    let floor = 0.05 / rows;
    let mut card = rows;
    let mut regex_filters = 0usize;
    // (column index, selectivity) of equality probes; range bounds per column.
    let mut eq_sels: Vec<(usize, f64)> = Vec::new();
    let mut ranges: Vec<RangeEst> = Vec::new();

    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] || !evaluable(c, alias, bound) {
            continue;
        }
        if !refs(c).iter().any(|a| a == alias) {
            continue;
        }
        if let Some((col, op, probe)) = as_probe(c, alias) {
            let ci = table.schema.col(col);
            match op {
                CmpOp::Eq => {
                    let f = match ci {
                        Some(ci) => match col_stats(ci) {
                            Some((cs, trows)) => {
                                cs.eq_fraction(literal_of(&probe), trows).clamp(floor, 1.0)
                            }
                            None => {
                                if let Some(ix) = table.index_on(&[ci]) {
                                    let d = ix.distinct_keys().max(1) as f64;
                                    (1.0 / d).max(1.0 / rows)
                                } else {
                                    sel::EQ_UNINDEXED
                                }
                            }
                        },
                        None => sel::EQ_UNINDEXED,
                    };
                    if let Some(ci) = ci {
                        eq_sels.push((ci, f));
                    }
                    card *= f;
                }
                CmpOp::Ne => {
                    let f = match ci.and_then(&col_stats) {
                        Some((cs, trows)) => {
                            (1.0 - cs.eq_fraction(literal_of(&probe), trows)).clamp(floor, 1.0)
                        }
                        None => sel::OTHER,
                    };
                    card *= f;
                }
                CmpOp::Gt | CmpOp::Ge | CmpOp::Lt | CmpOp::Le => match ci {
                    Some(ci) => {
                        let indexed = table.index_on(&[ci]).is_some();
                        let is_lo = matches!(op, CmpOp::Gt | CmpOp::Ge);
                        let lit = literal_of(&probe).cloned();
                        let drv = driver_of(&probe);
                        match ranges.iter_mut().find(|r| r.col == ci) {
                            Some(r) => {
                                if is_lo {
                                    r.lo = true;
                                    r.lo_lit = r.lo_lit.take().or(lit);
                                } else {
                                    r.hi = true;
                                    r.hi_lit = r.hi_lit.take().or(lit);
                                }
                                if r.driver.is_none() {
                                    r.driver = drv;
                                }
                            }
                            None => ranges.push(RangeEst {
                                col: ci,
                                lo: is_lo,
                                hi: !is_lo,
                                lo_lit: if is_lo { lit.clone() } else { None },
                                hi_lit: if is_lo { None } else { lit },
                                driver: drv,
                                indexed,
                            }),
                        }
                    }
                    None => card *= sel::OTHER,
                },
            }
        } else if let Some((col, lo, hi)) = as_between(c, alias) {
            match table.schema.col(col) {
                Some(ci) => ranges.push(RangeEst {
                    col: ci,
                    lo: true,
                    hi: true,
                    lo_lit: literal_of(&lo).cloned(),
                    hi_lit: literal_of(&hi).cloned(),
                    driver: driver_of(&lo).or_else(|| driver_of(&hi)),
                    indexed: table.index_on(&[ci]).is_some(),
                }),
                None => card *= sel::RANGE_TWO_SIDED,
            }
        } else if let Expr::RegexpLike { pattern, .. } = c {
            let f = if stats_enabled() {
                learned_regex_selectivity(pattern).unwrap_or(sel::REGEX)
            } else {
                sel::REGEX
            };
            card *= f;
            regex_filters += 1;
        } else if let Expr::IsNull { expr, negated } = c {
            let f = match col_of(expr, alias)
                .and_then(|n| table.schema.col(n))
                .and_then(col_stats)
            {
                Some((cs, trows)) => {
                    let nf = cs.nulls as f64 / trows.max(1) as f64;
                    if *negated { 1.0 - nf } else { nf }.clamp(floor, 1.0)
                }
                None => sel::OTHER,
            };
            card *= f;
        } else {
            card *= sel::OTHER;
        }
    }

    let mut best_range: Option<f64> = None;
    for r in &ranges {
        let f = match col_stats(r.col) {
            Some((cs, trows)) => {
                if r.lo_lit.is_some() || r.hi_lit.is_some() {
                    cs.range_fraction(r.lo_lit.as_ref(), r.hi_lit.as_ref(), trows)
                        .max(floor)
                } else if r.lo && r.hi {
                    // Correlated two-sided window — the Dewey descendant
                    // probe `d BETWEEN a.pos AND a.pos || 0xFF`. Driven
                    // by a *different* table, containment says each probe
                    // matches ~rows/driver_rows of this table (fraction
                    // 1/driver_rows). A self-window's expected size is
                    // the table's own measured Dewey prefix fanout.
                    let driver = r.driver.as_deref().and_then(table_of_alias);
                    match driver {
                        Some(dt) if dt.uid() != table.uid() => {
                            (1.0 / dt.len().max(1) as f64).clamp(floor, 1.0)
                        }
                        _ => match cs.prefix_fanout {
                            Some(fan) => ((fan + 1.0) / rows).clamp(floor, 1.0),
                            None => sel::RANGE_TWO_SIDED,
                        },
                    }
                } else {
                    sel::RANGE_ONE_SIDED
                }
            }
            None => {
                if r.lo && r.hi {
                    sel::RANGE_TWO_SIDED
                } else {
                    sel::RANGE_ONE_SIDED
                }
            }
        };
        card *= f;
        if r.indexed {
            best_range = Some(best_range.map_or(f, |b: f64| b.min(f)));
        }
    }
    // Best indexed equality access (build_step prefers these).
    let mut eq_best: Option<f64> = None;
    for &(ci, f) in &eq_sels {
        if table.index_on(&[ci]).is_some() {
            eq_best = Some(eq_best.map_or(f, |b: f64| b.min(f)));
        }
    }
    let fetched = if let Some(f) = eq_best {
        rows * f
    } else if let Some(f) = best_range {
        rows * f
    } else if !eq_sels.is_empty() {
        // hash join on an unindexed equality: the build is amortized, the
        // probe returns ~rows × selectivity.
        let f = eq_sels
            .iter()
            .map(|&(_, f)| f)
            .fold(f64::INFINITY, f64::min);
        rows * f
    } else {
        rows
    };
    (
        fetched.max(0.5),
        card.max(0.05).min(fetched.max(0.5)),
        regex_filters,
    )
}

/// Choose the access path for `alias` and attach every now-evaluable
/// conjunct as driver or residual.
#[allow(clippy::too_many_arguments)]
fn build_step(
    db: &Database,
    select: &Select,
    outer: &[(String, String)],
    table: &Table,
    table_name: &str,
    alias: &str,
    conjuncts: &mut [Expr],
    used: &mut [bool],
    bound: &[String],
    est_outer: f64,
) -> Step {
    // Candidate equality probes: col -> (conjunct idx, probe expr).
    let mut eq_probes: Vec<(usize, usize, Expr)> = Vec::new(); // (col_idx, conj_idx, expr)
    let mut range_probes: Vec<(usize, usize, CmpOp, Expr)> = Vec::new();
    let mut between_probes: Vec<(usize, usize, Expr, Expr)> = Vec::new();

    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] || !evaluable(c, alias, bound) || has_unqualified(c) {
            continue;
        }
        if let Some((col, op, probe)) = as_probe(c, alias) {
            if let Some(ci) = table.schema.col(col) {
                // A B-tree probe compares with the total order, which does
                // not perform SQL's implicit text↔number conversion — only
                // provably same-class probes are exact.
                let compatible = probe_type_class(db, select, outer, &probe)
                    == Some(type_class(table.schema.columns[ci].ty));
                match op {
                    CmpOp::Eq if compatible => eq_probes.push((ci, i, probe)),
                    CmpOp::Eq => {}
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge if compatible => {
                        range_probes.push((ci, i, op, probe))
                    }
                    _ => {}
                }
            }
        } else if let Some((col, lo, hi)) = as_between(c, alias) {
            if let Some(ci) = table.schema.col(col) {
                let cls = Some(type_class(table.schema.columns[ci].ty));
                if probe_type_class(db, select, outer, &lo) == cls
                    && probe_type_class(db, select, outer, &hi) == cls
                {
                    between_probes.push((ci, i, lo, hi));
                }
            }
        }
    }

    // 1. Best composite equality index: the index (over eq-probe columns)
    //    with the longest satisfied prefix.
    let mut access: Option<(Access, Vec<usize>)> = None; // (access, consumed conjuncts)
    let mut best_prefix = 0usize;
    for (ix_pos, ix) in table.indexes().iter().enumerate() {
        let mut keys = Vec::new();
        let mut consumed = Vec::new();
        for &kc in &ix.key_cols {
            if let Some((_, ci_conj, probe)) = eq_probes.iter().find(|(c, _, _)| *c == kc) {
                keys.push(probe.clone());
                consumed.push(*ci_conj);
            } else {
                break;
            }
        }
        if keys.len() == ix.key_cols.len() && keys.len() > best_prefix {
            best_prefix = keys.len();
            access = Some((
                Access::IndexEq {
                    index: ix_pos,
                    keys,
                },
                consumed,
            ));
        }
    }

    // 2. Equality on an unindexed column → hash join (build side = this
    //    table, built once and cached for the whole statement). Only sound
    //    when both sides provably share a type class: SQL's implicit
    //    text↔number conversion cannot be hashed.
    if access.is_none() {
        for (ci, conj, probe) in &eq_probes {
            let build_class = type_class(table.schema.columns[*ci].ty);
            if Some(build_class) == probe_type_class(db, select, outer, probe) {
                access = Some((
                    Access::HashEq {
                        column: *ci,
                        key: probe.clone(),
                    },
                    vec![*conj],
                ));
                break;
            }
        }
    }

    // 3. Range access on an index's first column, from BETWEEN or a pair /
    //    single bound of inequalities.
    if access.is_none() {
        for (ix_pos, ix) in table.indexes().iter().enumerate() {
            let lead = ix.key_cols[0];
            if let Some((_, ci, lo, hi)) = between_probes.iter().find(|(c, ..)| *c == lead) {
                let mk = if want_merge(table, true, est_outer) {
                    Access::MergeRange {
                        index: ix_pos,
                        lo: Some((lo.clone(), true)),
                        hi: Some((hi.clone(), true)),
                    }
                } else {
                    Access::IndexRange {
                        index: ix_pos,
                        lo: Some((lo.clone(), true)),
                        hi: Some((hi.clone(), true)),
                    }
                };
                access = Some((mk, vec![*ci]));
                break;
            }
            let mut lo: Option<(Expr, bool, usize)> = None;
            let mut hi: Option<(Expr, bool, usize)> = None;
            for (c, i, op, probe) in &range_probes {
                if *c != lead {
                    continue;
                }
                match op {
                    CmpOp::Gt => lo = lo.or(Some((probe.clone(), false, *i))),
                    CmpOp::Ge => lo = lo.or(Some((probe.clone(), true, *i))),
                    CmpOp::Lt => hi = hi.or(Some((probe.clone(), false, *i))),
                    CmpOp::Le => hi = hi.or(Some((probe.clone(), true, *i))),
                    _ => {}
                }
            }
            if lo.is_some() || hi.is_some() {
                let mut consumed = Vec::new();
                let two_sided = lo.is_some() && hi.is_some();
                let lo = lo.map(|(e, inc, i)| {
                    consumed.push(i);
                    (e, inc)
                });
                let hi = hi.map(|(e, inc, i)| {
                    consumed.push(i);
                    (e, inc)
                });
                let mk = if want_merge(table, two_sided, est_outer) {
                    Access::MergeRange {
                        index: ix_pos,
                        lo,
                        hi,
                    }
                } else {
                    Access::IndexRange {
                        index: ix_pos,
                        lo,
                        hi,
                    }
                };
                access = Some((mk, consumed));
                break;
            }
        }
    }

    let (access, consumed) = access.unwrap_or((Access::FullScan, Vec::new()));
    // Range scans over composite indexes can over-approximate (the scan
    // bound is widened to cover key suffixes), so their driving conjuncts
    // are re-checked as residuals. Equality probes are exact.
    let mut residuals = Vec::new();
    if matches!(
        access,
        Access::IndexRange { .. } | Access::MergeRange { .. }
    ) {
        for &i in &consumed {
            residuals.push(conjuncts[i].clone());
        }
    }
    for i in &consumed {
        used[*i] = true;
    }

    // All other conjuncts that become evaluable at this step are residuals.
    let bound_plus: Vec<String> = bound
        .iter()
        .cloned()
        .chain(std::iter::once(alias.to_string()))
        .collect();
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        let r = refs(c);
        let all_bound = r.iter().all(|a| bound_plus.iter().any(|b| b == a));
        // Attach here only if this step's alias is involved, or the
        // predicate involves a subquery/constant that just became fully
        // evaluable (r may be empty for constants). Conjuncts with
        // unqualified columns wait for the full environment (they fall to
        // the late filters, which attach to the last step).
        if all_bound
            && !has_unqualified(c)
            && (r.iter().any(|a| a == alias) || r.is_empty() || has_subquery(c))
        {
            residuals.push(c.clone());
            used[i] = true;
        }
    }

    Step {
        alias: std::sync::Arc::from(alias),
        table: table_name.to_string(),
        access,
        residuals,
        // Filled in by `plan_select` from `estimate_access`.
        est_fetched: 0.0,
        est_rows: 0.0,
    }
}

fn has_subquery(e: &Expr) -> bool {
    match e {
        Expr::Exists(_) | Expr::ScalarSubquery(_) => true,
        Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
            has_subquery(lhs) || has_subquery(rhs)
        }
        Expr::Between { expr, lo, hi, .. } => {
            has_subquery(expr) || has_subquery(lo) || has_subquery(hi)
        }
        Expr::And(xs) | Expr::Or(xs) => xs.iter().any(has_subquery),
        Expr::Not(x) | Expr::IsNull { expr: x, .. } => has_subquery(x),
        Expr::Concat(a, b) => has_subquery(a) || has_subquery(b),
        Expr::RegexpLike { subject, .. } => has_subquery(subject),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use relstore::{ColType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "A",
            &[("id", ColType::Int), ("x", ColType::Int)],
        ))
        .expect("create");
        db.create_table(TableSchema::new(
            "B",
            &[
                ("id", ColType::Int),
                ("par_id", ColType::Int),
                ("v", ColType::Str),
            ],
        ))
        .expect("create");
        {
            let a = db.table_mut("A").expect("A");
            for i in 0..100 {
                a.insert(vec![Value::Int(i), Value::Int(i % 10)])
                    .expect("row");
            }
            a.create_index("a_id", &["id"]).expect("idx");
        }
        {
            let b = db.table_mut("B").expect("B");
            for i in 0..1000 {
                b.insert(vec![
                    Value::Int(i),
                    Value::Int(i % 100),
                    Value::from(format!("v{i}")),
                ])
                .expect("row");
            }
            b.create_index("b_par", &["par_id"]).expect("idx");
        }
        db
    }

    fn plan(sql: &str) -> SelectPlan {
        let db = db();
        let stmt = parse_sql(sql).expect("parse");
        plan_select(&db, &stmt.branches[0], &[]).expect("plan")
    }

    #[test]
    fn equality_join_uses_index_nested_loop() {
        let p = plan("select B.id from A, B where B.par_id = A.id and A.x = 3");
        assert_eq!(p.steps.len(), 2);
        // A is scanned first (x = 3 filters it), B probed via b_par.
        assert_eq!(&*p.steps[0].alias, "A");
        assert!(matches!(p.steps[1].access, Access::IndexEq { .. }));
        assert!(p.late_filters.is_empty());
    }

    #[test]
    fn every_conjunct_lands_exactly_once() {
        let p = plan("select B.id from A, B where B.par_id = A.id and A.x = 3 and B.v <> 'v1'");
        let total: usize = p
            .steps
            .iter()
            .map(|s| {
                s.residuals.len()
                    + match &s.access {
                        Access::FullScan => 0,
                        Access::IndexEq { keys, .. } => keys.len(),
                        Access::HashEq { .. } => 1,
                        Access::IndexRange { lo, hi, .. } | Access::MergeRange { lo, hi, .. } => {
                            lo.is_some() as usize + hi.is_some() as usize
                        }
                    }
            })
            .sum::<usize>()
            + p.late_filters.len();
        assert_eq!(total, 3);
    }

    #[test]
    fn between_uses_range_access() {
        let mut dbx = db();
        dbx.table_mut("B")
            .expect("B")
            .create_index("b_id", &["id"])
            .expect("idx");
        let stmt = parse_sql("select B.id from B where B.id between 10 and 20").expect("parse");
        let p = plan_select(&dbx, &stmt.branches[0], &[]).expect("plan");
        assert!(matches!(p.steps[0].access, Access::IndexRange { .. }));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let dbx = db();
        let stmt = parse_sql("select X.id from X").expect("parse");
        assert!(plan_select(&dbx, &stmt.branches[0], &[]).is_err());
    }

    #[test]
    fn duplicate_alias_is_an_error() {
        let dbx = db();
        let stmt = parse_sql("select T.id from A T, B T").expect("parse");
        assert!(plan_select(&dbx, &stmt.branches[0], &[]).is_err());
    }

    /// Estimate the first FROM table of `sql` against `db`, returning
    /// (fetched, card).
    fn estimate(db: &Database, sql: &str) -> (f64, f64) {
        let stmt = parse_sql(sql).expect("parse");
        let sel = &stmt.branches[0];
        let mut conjuncts = Vec::new();
        if let Some(w) = &sel.where_clause {
            flatten_and(w, &mut conjuncts);
        }
        let used = vec![false; conjuncts.len()];
        let table = db.table(&sel.from[0].table).expect("table");
        let alias = sel.from[0].alias.clone();
        let (f, c, _) = estimate_access(db, sel, &[], table, &alias, &conjuncts, &used, &[]);
        (f, c)
    }

    #[test]
    fn empty_table_estimates_stay_positive_and_finite() {
        let mut dbx = db();
        dbx.create_table(TableSchema::new(
            "E",
            &[("id", ColType::Int), ("x", ColType::Int)],
        ))
        .expect("create");
        relstore::stats::analyze_db(&dbx);
        for sql in [
            "select E.id from E",
            "select E.id from E where E.x = 7",
            "select E.id from E where E.x between 1 and 5",
        ] {
            let (fetched, card) = estimate(&dbx, sql);
            assert!(fetched.is_finite() && fetched >= 0.5, "{sql}: {fetched}");
            assert!(card.is_finite() && card > 0.0, "{sql}: {card}");
            assert!(card <= fetched, "{sql}: card {card} > fetched {fetched}");
        }
    }

    #[test]
    fn one_row_table_equality_estimates_at_most_one_row() {
        let mut dbx = db();
        dbx.create_table(TableSchema::new(
            "O",
            &[("id", ColType::Int), ("x", ColType::Int)],
        ))
        .expect("create");
        dbx.table_mut("O")
            .expect("O")
            .insert(vec![Value::Int(1), Value::Int(42)])
            .expect("row");
        relstore::stats::analyze_db(&dbx);
        let (_, hit) = estimate(&dbx, "select O.id from O where O.x = 42");
        assert!(hit > 0.0 && hit <= 1.0, "hit: {hit}");
        // A literal outside the histogram domain reads as near-empty,
        // not as a constant fraction of the table.
        let (_, miss) = estimate(&dbx, "select O.id from O where O.x = 999");
        assert!(miss <= hit, "miss {miss} > hit {hit}");
    }

    #[test]
    fn unindexed_range_conjunct_uses_histogram_mass() {
        // B.id is 0..1000 uniform and unindexed: the histogram puts
        // `id >= 900` at ~10% where the constant fallback says 50%.
        let dbx = db();
        relstore::stats::analyze_db(&dbx);
        let (_, with_stats) = estimate(&dbx, "select B.id from B where B.id >= 900");
        assert!(
            (50.0..200.0).contains(&with_stats),
            "expected ~100 rows, got {with_stats}"
        );
        let prev = set_stats_enabled(false);
        let (_, without) = estimate(&dbx, "select B.id from B where B.id >= 900");
        set_stats_enabled(prev);
        assert!(
            (without - sel::RANGE_ONE_SIDED * 1000.0).abs() < 1e-9,
            "constant fallback: {without}"
        );
    }

    #[test]
    fn equality_at_histogram_bucket_boundary() {
        // B.par_id has 100 distinct values × 10 rows each; bucket
        // boundaries land on exact values, and an equality probe there
        // must still read ~rows-per-distinct, not a whole bucket.
        let dbx = db();
        relstore::stats::analyze_db(&dbx);
        for v in [0, 50, 99] {
            let sql = format!("select B.id from B where B.par_id = {v}");
            let (_, card) = estimate(&dbx, &sql);
            assert!((2.0..50.0).contains(&card), "par_id = {v}: {card}");
        }
    }

    #[test]
    fn stats_disabled_reproduces_constant_estimates() {
        let dbx = db();
        relstore::stats::analyze_db(&dbx);
        let prev = set_stats_enabled(false);
        // B.v is unindexed: equality falls back to EQ_UNINDEXED exactly.
        let (_, card) = estimate(&dbx, "select B.id from B where B.v = 'v1'");
        set_stats_enabled(prev);
        assert!(
            (card - sel::EQ_UNINDEXED * 1000.0).abs() < 1e-9,
            "card: {card}"
        );
    }

    #[test]
    fn correlated_probe_from_outer_alias() {
        // Planning the EXISTS body with A as an outer alias: B should be
        // probed by index using A.id even though A is not in this FROM.
        let dbx = db();
        let stmt = parse_sql("select B.id from B where B.par_id = A.id").expect("parse");
        let p = plan_select(
            &dbx,
            &stmt.branches[0],
            &[("A".to_string(), "A".to_string())],
        )
        .expect("plan");
        assert!(matches!(p.steps[0].access, Access::IndexEq { .. }));
    }
}
