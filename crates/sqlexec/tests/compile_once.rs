//! Regression test for the per-row `REGEXP_LIKE` compile bug: the
//! executor used to compile the pattern once per *evaluation*; it must
//! compile once per (executor thread, pattern) and reuse the program.
//!
//! This file intentionally holds a single `#[test]` so the process-wide
//! `regexlite::stats` counters it asserts on are not perturbed by other
//! tests running in parallel threads of the same binary (integration
//! test files are separate processes).

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::Executor;

fn paths_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "Paths",
        &[("id", ColType::Int), ("path", ColType::Str)],
    ))
    .unwrap();
    let t = db.table_mut("Paths").unwrap();
    for i in 0..rows {
        let path = if i % 3 == 0 {
            format!("/site/regions/item{i}")
        } else {
            format!("/site/people/person{i}")
        };
        t.insert(vec![Value::Int(i), Value::Str(path)]).unwrap();
    }
    db
}

#[test]
fn regexp_pattern_compiles_once_per_query_not_per_row() {
    const ROWS: i64 = 300;
    let db = paths_db(ROWS);
    let sql = "select P.id from Paths P \
               where REGEXP_LIKE(P.path, '^/site/regions(/[^/]+)*$') \
               order by P.id";

    sqlexec::clear_filter_caches();
    let before = regexlite::stats::snapshot();

    let exec = Executor::new(&db);
    let rs = exec.query(sql).unwrap();
    assert_eq!(rs.rows.len(), 100);

    let cold = regexlite::stats::snapshot().since(&before);
    assert_eq!(
        cold.compiles, 1,
        "one compile per (query, pattern), not per row: {cold:?}"
    );
    assert!(
        cold.match_calls >= ROWS as u64,
        "every row must be matched on the cold run: {cold:?}"
    );

    // A second executor on the same thread reuses both the compiled
    // program (regex cache) and the surviving-row memo: zero compiles,
    // zero additional matches.
    let exec2 = Executor::new(&db);
    let rs2 = exec2.query(sql).unwrap();
    assert_eq!(rs2.rows, rs.rows);

    let warm = regexlite::stats::snapshot().since(&before);
    assert_eq!(warm.compiles, 1, "warm run must not recompile: {warm:?}");
    assert_eq!(
        warm.match_calls, cold.match_calls,
        "warm run answers from the path-filter memo: {warm:?}"
    );
    assert_eq!(exec2.stats().path_memo_hits, 1);
    assert_eq!(exec2.stats().path_memo_misses, 0);
}
