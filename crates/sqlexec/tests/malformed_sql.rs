//! Malformed and hostile SQL through the public [`Executor::query`] API:
//! every input here must come back as a typed [`ExecError`] — never a
//! panic, never a stack overflow — classified by lifecycle phase.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{ExecError, Executor};

fn db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[("id", ColType::Int), ("s", ColType::Str)],
    ))
    .expect("table");
    for i in 0..10 {
        db.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(i), Value::Str(format!("row{i}"))])
            .expect("insert");
    }
    db
}

#[test]
fn garbage_is_a_parse_error() {
    let db = db();
    let exec = Executor::new(&db);
    for sql in [
        "",
        "garbage",
        "select",
        "select t.id from",
        "select t.id from t where",
        "select t.id from t trailing junk !!!",
        "select t.id from t where t.s = 'unterminated",
        "\u{0}\u{1}",
    ] {
        let err = exec.query(sql).expect_err(sql);
        assert!(
            matches!(err, ExecError::Parse(_)),
            "{sql:?} should be Parse, got {err:?}"
        );
    }
}

#[test]
fn deep_nesting_is_a_parse_error() {
    let db = db();
    let exec = Executor::new(&db);
    let bomb = format!(
        "select t.id from t where {}1 = 1{}",
        "(".repeat(1_000_000),
        ")".repeat(1_000_000)
    );
    let err = exec.query(&bomb).expect_err("paren bomb");
    assert!(matches!(err, ExecError::Parse(_)), "{err:?}");
    assert!(err.message().contains("nested too deeply"), "{err}");
}

#[test]
fn unknown_names_are_plan_errors() {
    let db = db();
    let exec = Executor::new(&db);
    let err = exec
        .query("select m.id from missing_table m")
        .expect_err("unknown table");
    assert!(matches!(err, ExecError::Plan(_)), "{err:?}");
}

#[test]
fn runtime_failures_are_exec_errors() {
    let db = db();
    let exec = Executor::new(&db);
    for sql in [
        // Type error only discoverable at evaluation time.
        "select t.id from t where t.id + t.s = 1",
        // Non-boolean predicate.
        "select t.id from t where t.id + 1",
        // Unknown column resolves during evaluation.
        "select t.id from t where t.nope = 1",
    ] {
        let err = exec.query(sql).expect_err(sql);
        assert!(
            matches!(err, ExecError::Exec(_)),
            "{sql:?} should be Exec, got {err:?}"
        );
    }
}

#[test]
fn regex_blowup_is_a_typed_error_not_oom() {
    let db = db();
    let exec = Executor::new(&db);
    // Counted-repetition bombs must be rejected by the compile-size
    // budget inside regexlite and surface as an execution error.
    for pattern in ["a{1000000}", "(a{1000}){1000}", "((a{100}){100}){100}"] {
        let sql = format!("select t.id from t where regexp_like(t.s, '{pattern}')");
        let err = exec.query(&sql).expect_err(&sql);
        assert!(matches!(err, ExecError::Exec(_)), "{err:?}");
        assert!(
            err.message().contains("bad regex"),
            "budget rejection should carry the pattern context: {err}"
        );
    }
}

#[test]
fn error_kind_tags_are_stable() {
    assert_eq!(ExecError::parse("x").kind(), "parse");
    assert_eq!(ExecError::plan("x").kind(), "plan");
    assert_eq!(ExecError::exec("x").kind(), "exec");
    assert_eq!(ExecError::limit("x").kind(), "limit");
    assert_eq!(ExecError::cancelled("x").kind(), "cancelled");
}
