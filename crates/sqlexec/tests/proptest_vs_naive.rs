//! Property test: the planned, index-driven executor must produce exactly
//! the rows of the brute-force cross-product reference (`naive_select`)
//! on randomized databases and generated queries.

use proptest::prelude::*;
use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::ast::{CmpOp, Expr, Projection, Select, SelectStmt, TableRef};
use sqlexec::{naive_select, Executor};

/// Build a two-table database with randomized contents. `R` and `S` have
/// integer, string and bytes columns; both get single and composite
/// indexes so index paths actually get exercised.
fn build_db(r_rows: &[(i64, i64, String)], s_rows: &[(i64, i64, Vec<u8>)]) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "R",
        &[
            ("id", ColType::Int),
            ("k", ColType::Int),
            ("s", ColType::Str),
        ],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "S",
        &[
            ("id", ColType::Int),
            ("rk", ColType::Int),
            ("b", ColType::Bytes),
        ],
    ))
    .unwrap();
    {
        let r = db.table_mut("R").unwrap();
        for (id, k, s) in r_rows {
            r.insert(vec![Value::Int(*id), Value::Int(*k), Value::Str(s.clone())])
                .unwrap();
        }
        r.create_index("r_id", &["id"]).unwrap();
        r.create_index("r_k", &["k"]).unwrap();
    }
    {
        let s = db.table_mut("S").unwrap();
        for (id, rk, b) in s_rows {
            s.insert(vec![
                Value::Int(*id),
                Value::Int(*rk),
                Value::Bytes(b.clone()),
            ])
            .unwrap();
        }
        s.create_index("s_rk", &["rk"]).unwrap();
        s.create_index("s_b", &["b"]).unwrap();
    }
    db
}

/// A small pool of predicate shapes over R (alias r) and S (alias s).
fn arb_predicate() -> impl Strategy<Value = Expr> {
    let lit_int = (0i64..8).prop_map(Expr::int);
    let r_k = Just(Expr::column("r", "k"));
    let s_rk = Just(Expr::column("s", "rk"));
    let cmp_op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge)
    ];
    let join =
        (cmp_op.clone(), r_k.clone(), s_rk.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b));
    let filter_r =
        (cmp_op.clone(), r_k, lit_int.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b));
    let filter_s = (cmp_op, s_rk, lit_int.clone()).prop_map(|(op, a, b)| Expr::cmp(op, a, b));
    let between = (0i64..6, 0i64..6).prop_map(|(a, b)| Expr::Between {
        expr: Box::new(Expr::column("s", "rk")),
        lo: Box::new(Expr::int(a.min(b))),
        hi: Box::new(Expr::int(a.max(b))),
        negated: false,
    });
    let bytes_range = proptest::collection::vec(0u8..4, 0..3).prop_map(|b| Expr::Between {
        expr: Box::new(Expr::column("s", "b")),
        lo: Box::new(Expr::Literal(Value::Bytes(b.clone()))),
        hi: Box::new(Expr::Concat(
            Box::new(Expr::Literal(Value::Bytes(b))),
            Box::new(Expr::Literal(Value::Bytes(vec![0xFF]))),
        )),
        negated: false,
    });
    prop_oneof![join, filter_r, filter_s, between, bytes_range]
}

fn arb_where() -> impl Strategy<Value = Option<Expr>> {
    proptest::collection::vec(arb_predicate(), 0..4).prop_flat_map(|preds| {
        if preds.is_empty() {
            Just(None).boxed()
        } else {
            // Combine with a random mix of AND plus an occasional OR / NOT.
            let n = preds.len();
            (Just(preds), 0..n, any::<bool>(), any::<bool>())
                .prop_map(|(preds, or_at, use_or, negate)| {
                    let mut it = preds.into_iter();
                    let mut acc = it.next().expect("non-empty");
                    for (i, p) in it.enumerate() {
                        if use_or && i == or_at {
                            acc = acc.or(p);
                        } else {
                            acc = acc.and(p);
                        }
                    }
                    if negate {
                        acc = Expr::Not(Box::new(acc));
                    }
                    Some(acc)
                })
                .boxed()
        }
    })
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.cmp_total(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn planned_execution_matches_naive(
        r_rows in proptest::collection::vec((0i64..30, 0i64..8, "[a-c]{0,2}"), 0..25),
        s_rows in proptest::collection::vec(
            (0i64..30, 0i64..8, proptest::collection::vec(0u8..4, 0..4)), 0..25),
        where_clause in arb_where(),
        distinct in any::<bool>(),
    ) {
        let db = build_db(&r_rows, &s_rows);
        let select = Select {
            distinct,
            projections: vec![
                Projection::col("r", "id"),
                Projection::col("s", "id"),
                Projection::col("s", "b"),
            ],
            from: vec![TableRef::new("R", "r"), TableRef::new("S", "s")],
            where_clause,
        };
        let expected = sorted(naive_select(&db, &select).expect("naive"));
        let exec = Executor::new(&db);
        let got = exec.run(&SelectStmt::single(select)).expect("planned");
        prop_assert_eq!(sorted(got.rows), expected);
    }

    #[test]
    fn exists_matches_semijoin_semantics(
        r_rows in proptest::collection::vec((0i64..20, 0i64..6, "[ab]{0,2}"), 1..15),
        s_rows in proptest::collection::vec(
            (0i64..20, 0i64..6, proptest::collection::vec(0u8..3, 0..3)), 0..15),
    ) {
        let db = build_db(&r_rows, &s_rows);
        // r rows with at least one s where s.rk = r.k
        let sub = Select {
            distinct: false,
            projections: vec![Projection { expr: Expr::Literal(Value::Null), alias: None }],
            from: vec![TableRef::new("S", "s")],
            where_clause: Some(Expr::eq(Expr::column("s", "rk"), Expr::column("r", "k"))),
        };
        let select = Select {
            distinct: false,
            projections: vec![Projection::col("r", "id")],
            from: vec![TableRef::new("R", "r")],
            where_clause: Some(Expr::Exists(Box::new(sub))),
        };
        let exec = Executor::new(&db);
        let got = sorted(exec.run(&SelectStmt::single(select)).expect("run").rows);
        let mut expected: Vec<Vec<Value>> = r_rows
            .iter()
            .filter(|(_, k, _)| s_rows.iter().any(|(_, rk, _)| rk == k))
            .map(|(id, _, _)| vec![Value::Int(*id)])
            .collect();
        expected = sorted(expected);
        prop_assert_eq!(got, expected);
    }
}
