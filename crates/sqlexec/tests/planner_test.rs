//! Planner behaviour tests: join ordering must exploit two-sided Dewey
//! windows (the ancestor-join direction problem) and the exhaustive
//! enumeration must match greedy results semantically.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::plan::{plan_select, Access};
use sqlexec::{parse_sql, Executor};

/// Two relations shaped like a shredded ancestor join: `anc` (small) and
/// `desc` (large), with dewey ranges.
fn ancestor_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "anc",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "descn",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        let a = db.table_mut("anc").unwrap();
        for i in 0..20i64 {
            a.insert(vec![Value::Int(i), Value::Bytes(vec![0, 0, i as u8 + 1])])
                .unwrap();
        }
        a.create_index("anc_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let d = db.table_mut("descn").unwrap();
        let mut id = 100;
        for i in 0..20i64 {
            for j in 0..50u8 {
                d.insert(vec![
                    Value::Int(id),
                    Value::Bytes(vec![0, 0, i as u8 + 1, 0, 0, j + 1]),
                ])
                .unwrap();
                id += 1;
            }
        }
        d.create_index("descn_dewey", &["dewey_pos"]).unwrap();
    }
    db
}

#[test]
fn ancestor_join_drives_from_the_small_side() {
    // descn strictly inside anc's window: the plan must scan `anc` first
    // and range-probe `descn` (two-sided), not the reverse.
    let db = ancestor_db();
    let stmt = parse_sql(
        "select anc.id from anc, descn \
         where descn.dewey_pos > anc.dewey_pos \
         and descn.dewey_pos < anc.dewey_pos || x'FF'",
    )
    .unwrap();
    let plan = plan_select(&db, &stmt.branches[0], &[]).unwrap();
    assert_eq!(&*plan.steps[0].alias, "anc", "small side first");
    assert!(
        matches!(
            plan.steps[1].access,
            Access::IndexRange {
                lo: Some(_),
                hi: Some(_),
                ..
            }
        ),
        "descendant side must be probed with a two-sided range: {:?}",
        plan.steps[1].access
    );
    // And execution is correct.
    let exec = Executor::new(&db);
    let rs = exec.run(&stmt).unwrap();
    assert_eq!(rs.rows.len(), 20 * 50);
    // Work should be near-linear: roughly one probe per anc row.
    let stats = exec.stats();
    assert!(
        stats.rows_scanned <= (20 + 20 * 50 + 50) as u64,
        "scanned {} rows",
        stats.rows_scanned
    );
}

#[test]
fn exhaustive_and_greedy_agree_on_results() {
    // 7 tables forces the greedy path; compare against a 2-table subset
    // exhaustive plan for semantic equality of results.
    let mut db = Database::new();
    for t in ["t1", "t2", "t3", "t4", "t5", "t6", "t7"] {
        db.create_table(TableSchema::new(t, &[("k", ColType::Int)]))
            .unwrap();
        let tab = db.table_mut(t).unwrap();
        for i in 0..4 {
            tab.insert(vec![Value::Int(i)]).unwrap();
        }
    }
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select t1.k from t1, t2, t3, t4, t5, t6, t7 \
             where t1.k = t2.k and t2.k = t3.k and t3.k = t4.k \
             and t4.k = t5.k and t5.k = t6.k and t6.k = t7.k and t1.k = 2",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn between_inverted_bounds_select_nothing() {
    let db = ancestor_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query("select anc.id from anc where anc.dewey_pos between x'05' and x'01'")
        .unwrap();
    assert!(rs.rows.is_empty());
    // Exclusive-equal bound is empty too (via >/<).
    let rs2 = exec
        .query(
            "select anc.id from anc \
             where anc.dewey_pos > x'000001' and anc.dewey_pos < x'000001'",
        )
        .unwrap();
    assert!(rs2.rows.is_empty());
}
