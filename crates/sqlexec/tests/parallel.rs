//! Parallel-execution equivalence: partitioned path-filter scans and
//! partitioned structural-join pipelines must return exactly what the
//! serial engine returns — same rows, same document order — under every
//! [`ParallelMode`], and the partition boundary handling must be correct
//! even when an even split would land inside a Dewey subtree.
//!
//! The process pool is sized once for the whole test binary (the host
//! running CI may have a single core; partitioning is a property of the
//! pool's thread count, not the machine's). `ParallelMode` itself is
//! thread-local, so `#[test]` threads cannot perturb each other.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{ExecStats, Executor, ParallelMode};

fn pool4() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| ppf_pool::set_threads(4));
}

fn with_mode<R>(mode: ParallelMode, f: impl FnOnce() -> R) -> R {
    let prev = sqlexec::set_parallel_mode(mode);
    let r = f();
    sqlexec::set_parallel_mode(prev);
    r
}

fn ids(db: &Database, sql: &str) -> (Vec<i64>, ExecStats) {
    let exec = Executor::new(db);
    let rs = exec.query(sql).unwrap();
    let ids = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    (ids, exec.stats())
}

/// A `Paths`-style table large enough that even `Auto` mode would want
/// to fan out if the pool allowed it; `ForceOn` always does.
fn paths_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "Paths",
        &[("id", ColType::Int), ("path", ColType::Str)],
    ))
    .unwrap();
    let t = db.table_mut("Paths").unwrap();
    for i in 0..rows {
        let path = if i % 3 == 0 {
            format!("/site/regions/item{i}/keyword")
        } else {
            format!("/site/people/person{i}/name")
        };
        t.insert(vec![Value::Int(i), Value::Str(path)]).unwrap();
    }
    db
}

const FILTER: &str = "select P.id from Paths P \
                      where REGEXP_LIKE(P.path, '^/site/regions(/[^/]+)*/keyword$') \
                      order by P.id";

#[test]
fn partitioned_filter_scan_matches_serial() {
    pool4();
    let db = paths_db(600);
    sqlexec::clear_filter_caches();
    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || ids(&db, FILTER));
    assert_eq!(serial.len(), 200);
    assert_eq!(s_stats.par_tasks, 0);

    sqlexec::clear_filter_caches();
    let (par, p_stats) = with_mode(ParallelMode::ForceOn, || ids(&db, FILTER));
    assert_eq!(par, serial, "partitioned scan changed the result");
    assert!(p_stats.par_tasks >= 1, "{p_stats:?}");
    assert!(p_stats.par_chunks >= 2, "{p_stats:?}");
    // Skew accounting: every input row of every fan-out (the 600-row
    // filter scan, plus any downstream branch fan-out) is attributed to
    // a chunk, and the widest chunk is at least one even share.
    assert!(p_stats.par_rows >= 600, "{p_stats:?}");
    assert!(
        p_stats.par_chunk_rows_max >= p_stats.par_rows / p_stats.par_chunks.max(1),
        "{p_stats:?}"
    );

    sqlexec::clear_filter_caches();
    let (auto, _) = with_mode(ParallelMode::Auto, || ids(&db, FILTER));
    assert_eq!(auto, serial);
}

/// Shredded-style structural join: outer context nodes against their
/// Dewey descendants, the shape `branch_rows_parallel` partitions.
fn dewey_db(contexts: u8, children: u8) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "A",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        let a = db.table_mut("A").unwrap();
        for i in 0..contexts {
            a.insert(vec![Value::Int(i as i64), Value::Bytes(vec![0, 0, i])])
                .unwrap();
        }
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = db.table_mut("F").unwrap();
        let mut id = 1000i64;
        for i in 0..contexts {
            for j in 0..children {
                f.insert(vec![Value::Int(id), Value::Bytes(vec![0, 0, i, 0, 0, j])])
                    .unwrap();
                id += 1;
            }
        }
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }
    db
}

const DEWEY_JOIN: &str = "select F.id from A, F \
     where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
     order by F.dewey_pos, F.id";

#[test]
fn partitioned_structural_join_matches_serial_in_every_mode() {
    pool4();
    let db = dewey_db(80, 6);

    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || ids(&db, DEWEY_JOIN));
    assert_eq!(serial.len(), 80 * 6);
    assert_eq!(s_stats.par_tasks, 0);

    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || ids(&db, DEWEY_JOIN));
    assert_eq!(forced, serial, "forced partitioning changed the result");
    assert!(f_stats.par_tasks >= 1, "{f_stats:?}");
    assert!(f_stats.par_chunks >= 2, "{f_stats:?}");

    // Pin the cost model to one that always prefers forking: the Auto
    // path must then fan out deterministically, regardless of what the
    // process-wide model has learned from earlier tests.
    let prev = sqlexec::set_cost_override(Some(sqlexec::CostModel {
        row_ns: 1e6,
        scan_ns: 1e6,
        hash_ns: 1e6,
        sort_cmp_ns: 1e6,
        fork_ns: 0.0,
        chunk_ns: 1.0,
        efficiency: 1.0,
    }));
    let (auto, a_stats) = with_mode(ParallelMode::Auto, || ids(&db, DEWEY_JOIN));
    sqlexec::set_cost_override(prev);
    assert_eq!(auto, serial, "auto partitioning changed the result");
    assert!(a_stats.par_tasks >= 1, "{a_stats:?}");
}

#[test]
fn partitioned_join_preserves_work_counters() {
    pool4();
    let db = dewey_db(64, 8);

    let (serial, s) = with_mode(ParallelMode::ForceOff, || ids(&db, DEWEY_JOIN));
    let (par, p) = with_mode(ParallelMode::ForceOn, || ids(&db, DEWEY_JOIN));
    assert_eq!(par, serial);
    // Partitioning redistributes the work; it must not change its size.
    assert_eq!(p.rows_scanned, s.rows_scanned, "serial {s:?} vs par {p:?}");
    assert_eq!(p.index_probes, s.index_probes, "serial {s:?} vs par {p:?}");
    assert_eq!(
        p.predicate_evals, s.predicate_evals,
        "serial {s:?} vs par {p:?}"
    );
}

/// An outer run whose even split lands inside a Dewey subtree: ancestor
/// contexts interleaved with their own descendants in the same table.
/// The boundary alignment keeps each subtree's rows on one worker, and —
/// whatever the boundaries — results must be byte-identical to serial.
#[test]
fn dewey_chunk_boundaries_do_not_corrupt_subtree_runs() {
    pool4();
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "A",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        // Outer run: root [0,0,i] immediately followed by its own
        // children [0,0,i,0,0,j] — any even boundary inside a run would
        // separate a root from its descendants.
        let a = db.table_mut("A").unwrap();
        let mut id = 0i64;
        for i in 0..10u8 {
            a.insert(vec![Value::Int(id), Value::Bytes(vec![0, 0, i])])
                .unwrap();
            id += 1;
            for j in 0..5u8 {
                a.insert(vec![Value::Int(id), Value::Bytes(vec![0, 0, i, 0, 0, j])])
                    .unwrap();
                id += 1;
            }
        }
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = db.table_mut("F").unwrap();
        let mut id = 1000i64;
        for i in 0..10u8 {
            for j in 0..5u8 {
                // Leaves under both the child and (by prefix) the root.
                f.insert(vec![
                    Value::Int(id),
                    Value::Bytes(vec![0, 0, i, 0, 0, j, 0, 0, 0]),
                ])
                .unwrap();
                id += 1;
            }
        }
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }

    let (serial, _) = with_mode(ParallelMode::ForceOff, || ids(&db, DEWEY_JOIN));
    // Every leaf matches its parent chain: 50 leaves × (root + child).
    assert_eq!(serial.len(), 100);
    let (par, p) = with_mode(ParallelMode::ForceOn, || ids(&db, DEWEY_JOIN));
    assert_eq!(par, serial, "chunk-edge handling changed the result");
    assert!(p.par_chunks >= 2, "{p:?}");
}

#[test]
fn mode_toggle_returns_previous() {
    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    assert_eq!(sqlexec::parallel_mode(), ParallelMode::ForceOn);
    let back = sqlexec::set_parallel_mode(prev);
    assert_eq!(back, ParallelMode::ForceOn);
}

#[test]
fn explain_analyze_reports_parallel_counters() {
    pool4();
    let db = dewey_db(48, 4);
    let stmt = sqlexec::parse_sql(DEWEY_JOIN).unwrap();
    let out = with_mode(ParallelMode::ForceOn, || {
        sqlexec::explain_analyze(&db, &stmt).unwrap()
    });
    assert!(out.contains("pool_threads="), "{out}");
    assert!(out.contains("par_tasks="), "{out}");
    assert!(out.contains("par_chunks="), "{out}");
}
