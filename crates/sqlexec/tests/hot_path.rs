//! Hot-path cache behaviour: the path-filter memo must invalidate when
//! the backing table changes (version bump) and must never alias across
//! cloned databases (fresh table uid); the sort-merge structural join
//! must return exactly what the index nested-loop join returns.
//!
//! These tests assert only per-executor `ExecStats` and thread-local
//! state, so they are safe to run in parallel with each other.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{explain_stmt, parse_sql, Executor, MergeMode};

fn paths_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "Paths",
        &[("id", ColType::Int), ("path", ColType::Str)],
    ))
    .unwrap();
    let t = db.table_mut("Paths").unwrap();
    for (id, path) in [
        (1, "/a"),
        (2, "/a/b"),
        (3, "/a/b/c"),
        (4, "/a/x"),
        (5, "/a/x/c"),
    ] {
        t.insert(vec![Value::Int(id), Value::from(path)]).unwrap();
    }
    db
}

const FILTER: &str = "select P.id from Paths P \
                      where REGEXP_LIKE(P.path, '^/a(/[^/]+)*/c$') \
                      order by P.id";

fn ids(db: &Database, sql: &str) -> (Vec<i64>, sqlexec::ExecStats) {
    let exec = Executor::new(db);
    let rs = exec.query(sql).unwrap();
    let ids = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    (ids, exec.stats())
}

#[test]
fn path_memo_hits_then_invalidates_on_table_mutation() {
    let mut db = paths_db();

    let (cold_ids, cold) = ids(&db, FILTER);
    assert_eq!(cold_ids, vec![3, 5]);
    assert_eq!(cold.path_memo_misses, 1);
    assert_eq!(cold.path_memo_hits, 0);

    let (warm_ids, warm) = ids(&db, FILTER);
    assert_eq!(warm_ids, vec![3, 5]);
    assert_eq!(warm.path_memo_hits, 1);
    assert_eq!(warm.path_memo_misses, 0);

    // Any insert bumps the table version: the memo entry keyed by the
    // old (uid, version) no longer matches, and the new row appears.
    db.table_mut("Paths")
        .unwrap()
        .insert(vec![Value::Int(6), Value::from("/a/y/c")])
        .unwrap();
    let (fresh_ids, fresh) = ids(&db, FILTER);
    assert_eq!(fresh_ids, vec![3, 5, 6]);
    assert_eq!(fresh.path_memo_misses, 1);
    assert_eq!(fresh.path_memo_hits, 0);
}

#[test]
fn path_memo_does_not_alias_across_cloned_databases() {
    let db = paths_db();
    let (_, s) = ids(&db, FILTER);
    assert_eq!(s.path_memo_misses, 1);

    // A clone gets fresh table uids, so the memo populated for the
    // original must not answer for it — even though the contents are
    // identical right now (they can diverge at any time).
    let mut clone = db.clone();
    clone
        .table_mut("Paths")
        .unwrap()
        .insert(vec![Value::Int(7), Value::from("/a/z/c")])
        .unwrap();
    let (clone_ids, cs) = ids(&clone, FILTER);
    assert_eq!(clone_ids, vec![3, 5, 7]);
    assert_eq!(cs.path_memo_misses, 1);
    assert_eq!(cs.path_memo_hits, 0);
}

/// Shredded-style tables big enough to exercise the merge cursor: one
/// outer table of "context" Dewey keys and one inner table of element
/// rows, joined by the paper's `BETWEEN` containment condition.
fn dewey_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "A",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        let a = db.table_mut("A").unwrap();
        for i in 0..40i64 {
            // Dewey prefix [0,0,i] — 40 ordered context nodes.
            a.insert(vec![Value::Int(i), Value::Bytes(vec![0, 0, i as u8])])
                .unwrap();
        }
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = db.table_mut("F").unwrap();
        let mut id = 1000i64;
        for i in 0..40i64 {
            for j in 0..8u8 {
                // Children [0,0,i,0,0,j] under context i.
                f.insert(vec![
                    Value::Int(id),
                    Value::Bytes(vec![0, 0, i as u8, 0, 0, j]),
                ])
                .unwrap();
                id += 1;
            }
        }
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }
    db
}

const DEWEY_JOIN: &str = "select F.id from A, F \
     where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
     order by F.dewey_pos, F.id";

#[test]
fn merge_join_matches_index_nested_loop_results() {
    let db = dewey_db();

    let prev = sqlexec::set_merge_mode(MergeMode::ForceOff);
    let (nl_ids, nl_stats) = ids(&db, DEWEY_JOIN);
    sqlexec::set_merge_mode(MergeMode::ForceOn);
    let (merge_ids, merge_stats) = ids(&db, DEWEY_JOIN);
    sqlexec::set_merge_mode(prev);

    assert_eq!(nl_ids.len(), 40 * 8);
    assert_eq!(merge_ids, nl_ids, "merge join must be result-identical");
    assert_eq!(nl_stats.merge_probes, 0);
    assert!(
        merge_stats.merge_probes >= 40,
        "every outer row probes the merge cursor: {merge_stats:?}"
    );
}

#[test]
fn planner_renders_merge_access_path_when_forced() {
    let db = dewey_db();
    let stmt = parse_sql(DEWEY_JOIN).unwrap();

    let prev = sqlexec::set_merge_mode(MergeMode::ForceOn);
    let plan = explain_stmt(&db, &stmt);
    sqlexec::set_merge_mode(prev);
    let plan = plan.unwrap();
    assert!(plan.contains("merge["), "{plan}");

    let prev = sqlexec::set_merge_mode(MergeMode::ForceOff);
    let plan = explain_stmt(&db, &stmt);
    sqlexec::set_merge_mode(prev);
    let plan = plan.unwrap();
    assert!(!plan.contains("merge["), "{plan}");
}

#[test]
fn auto_mode_uses_merge_only_past_the_cardinality_thresholds() {
    // dewey_db's F table has 320 rows (>= 256) and the A side feeds 40
    // outer rows (>= 32): Auto picks the merge strategy.
    let db = dewey_db();
    let (_, stats) = ids(&db, DEWEY_JOIN);
    assert!(stats.merge_probes > 0, "{stats:?}");

    // A tiny table stays on the B-tree range probe.
    let mut small = Database::new();
    small
        .create_table(TableSchema::new(
            "A",
            &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
        ))
        .unwrap();
    small
        .create_table(TableSchema::new(
            "F",
            &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
        ))
        .unwrap();
    {
        let a = small.table_mut("A").unwrap();
        a.insert(vec![Value::Int(1), Value::Bytes(vec![0, 0, 1])])
            .unwrap();
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = small.table_mut("F").unwrap();
        f.insert(vec![Value::Int(2), Value::Bytes(vec![0, 0, 1, 0, 0, 1])])
            .unwrap();
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }
    let (small_ids, small_stats) = ids(&small, DEWEY_JOIN);
    assert_eq!(small_ids, vec![2]);
    assert_eq!(small_stats.merge_probes, 0, "{small_stats:?}");
}
