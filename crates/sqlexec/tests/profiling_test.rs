//! Regression tests for per-step profiling (`OpStats`) and for the
//! ExecStats undercount fixed alongside it: counters must survive error
//! exits, probes must be counted only when a probe is actually performed,
//! and nested-loop / subquery rescans must be visible per step.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{explain_analyze, parse_sql, ExecStats, Executor};

fn two_table_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[("id", ColType::Int), ("k", ColType::Int)],
    ))
    .unwrap();
    {
        let t = db.table_mut("t").unwrap();
        for i in 0..rows {
            t.insert(vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        t.create_index("t_id", &["id"]).unwrap();
    }
    db
}

#[test]
fn stats_survive_scalar_subquery_error() {
    // The scalar subquery matches 5 rows for k = 0, so it errors after
    // scanning some of them. Before the fix, the `?` propagation dropped
    // every counter accumulated inside the failing block.
    let db = two_table_db(25);
    let stmt =
        parse_sql("select a.id from t a where a.id = (select u.id from t u where u.k = a.k)")
            .unwrap();
    let exec = Executor::new(&db);
    let err = exec.run(&stmt).expect_err("scalar subquery must error");
    assert!(err.message().contains("more than one row"), "{err}");
    let stats = exec.stats();
    assert!(
        stats.rows_scanned > 0,
        "rows scanned before the error must be counted: {stats:?}"
    );
    assert!(
        stats.predicate_evals > 0,
        "predicate evals before the error must be counted: {stats:?}"
    );
    assert_eq!(stats.subqueries, 1);
}

#[test]
fn probes_counted_inside_correlated_exists() {
    let db = two_table_db(20);
    let stmt =
        parse_sql("select a.id from t a where exists (select null from t b where b.id = a.k)")
            .unwrap();
    let exec = Executor::new(&db);
    let rs = exec.run(&stmt).unwrap();
    assert_eq!(rs.rows.len(), 20);
    let stats = exec.stats();
    // One EXISTS execution per outer row, each performing one index probe.
    assert_eq!(stats.subqueries, 20);
    assert!(
        stats.index_probes >= 20,
        "each correlated EXISTS rescan probes the index: {stats:?}"
    );
}

#[test]
fn null_key_probe_is_not_counted() {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[("id", ColType::Int), ("k", ColType::Int)],
    ))
    .unwrap();
    {
        let t = db.table_mut("t").unwrap();
        for i in 0..4 {
            // k is NULL everywhere: every join-key evaluation yields NULL.
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
    }
    let stmt = parse_sql("select a.id from t a, t b where b.k = a.k").unwrap();
    let exec = Executor::new(&db);
    let rs = exec.run(&stmt).unwrap();
    assert!(rs.rows.is_empty());
    assert_eq!(
        exec.stats().index_probes,
        0,
        "a NULL-key lookup performs no probe and must not count one"
    );
}

#[test]
fn step_stats_expose_rescans_and_row_flow() {
    let db = two_table_db(10);
    let stmt = parse_sql("select a.id from t a, t b where a.k = 2 and b.id = a.id").unwrap();
    let exec = Executor::new(&db);
    exec.run(&stmt).unwrap();

    // The planner turns `a.k = 2` into a hash lookup on k, so the outer
    // step fetches exactly the 2 matching rows (ids 2 and 7).
    let sel = &stmt.branches[0];
    let steps = exec
        .step_stats(sel)
        .expect("executed select has step stats");
    assert_eq!(steps.len(), 2);
    let (outer, inner) = (&steps[0], &steps[1]);
    assert_eq!(outer.invocations, 1);
    assert_eq!(outer.rows_in, 2, "hash lookup on k = 2 fetches 2 rows");
    assert_eq!(outer.rows_out, 2);
    assert_eq!(
        inner.invocations, outer.rows_out,
        "inner step is re-invoked once per surviving outer row"
    );
    assert_eq!(inner.index_probes, 2);
    assert_eq!(inner.rows_out, 2);
}

#[test]
fn step_stats_absent_for_never_executed_subquery() {
    let db = two_table_db(5);
    // `1 = 2` makes the AND short-circuit before the EXISTS ever runs.
    let stmt = parse_sql(
        "select a.id from t a where 1 = 2 and exists (select null from t b where b.id = a.id)",
    )
    .unwrap();
    let exec = Executor::new(&db);
    let rs = exec.run(&stmt).unwrap();
    assert!(rs.rows.is_empty());

    fn find_exists(e: &sqlexec::Expr) -> Option<&sqlexec::Select> {
        match e {
            sqlexec::Expr::Exists(s) => Some(s),
            sqlexec::Expr::And(xs) | sqlexec::Expr::Or(xs) => xs.iter().find_map(find_exists),
            sqlexec::Expr::Not(x) => find_exists(x),
            _ => None,
        }
    }
    let sub = stmt.branches[0]
        .where_clause
        .as_ref()
        .and_then(find_exists)
        .expect("query has an EXISTS");
    assert!(
        exec.step_stats(sub).is_none(),
        "short-circuited subquery must have no step stats"
    );
    assert_eq!(exec.stats().subqueries, 0);
}

#[test]
fn global_stats_equal_sum_of_step_stats() {
    let db = two_table_db(30);
    let stmt = parse_sql(
        "select a.id from t a, t b where b.id = a.k and exists \
         (select null from t c where c.id = b.k)",
    )
    .unwrap();
    let exec = Executor::new(&db);
    exec.run(&stmt).unwrap();

    // Collect every select block (outer + the EXISTS subquery). The
    // subquery the executor profiled is the clone inside its cached
    // plan's residuals, not the one in the statement AST.
    let sel = &stmt.branches[0];
    let plan = exec.cached_plan(sel).expect("branch was planned");
    fn find_exists(e: &sqlexec::Expr) -> Option<&sqlexec::Select> {
        match e {
            sqlexec::Expr::Exists(s) => Some(s),
            sqlexec::Expr::And(xs) => xs.iter().find_map(find_exists),
            _ => None,
        }
    }
    let sub = plan
        .steps
        .iter()
        .flat_map(|s| s.residuals.iter())
        .chain(plan.late_filters.iter())
        .find_map(find_exists)
        .expect("query has an EXISTS");
    let mut total = ExecStats::default();
    for block in [sel, sub] {
        for op in exec.step_stats(block).expect("block executed") {
            total.rows_scanned += op.rows_in;
            total.index_probes += op.index_probes;
            total.predicate_evals += op.predicate_evals;
        }
    }
    let global = exec.stats();
    assert_eq!(global.rows_scanned, total.rows_scanned);
    assert_eq!(global.index_probes, total.index_probes);
    assert_eq!(global.predicate_evals, total.predicate_evals);
}

#[test]
fn elapsed_only_measured_under_profiling() {
    let db = two_table_db(10);
    let stmt = parse_sql("select a.id from t a").unwrap();

    let exec = Executor::new(&db);
    exec.run(&stmt).unwrap();
    let steps = exec.step_stats(&stmt.branches[0]).unwrap();
    assert_eq!(steps[0].elapsed_ns, 0, "no timing without profiling");

    let exec = Executor::new(&db);
    exec.set_profiling(true);
    exec.run(&stmt).unwrap();
    let steps = exec.step_stats(&stmt.branches[0]).unwrap();
    assert!(steps[0].elapsed_ns > 0, "profiling measures wall time");
}

#[test]
fn explain_analyze_renders_estimates_and_actuals() {
    let db = two_table_db(50);
    let stmt =
        parse_sql("select a.id from t a, t b where a.k = 3 and b.id = a.id order by a.id").unwrap();
    let out = explain_analyze(&db, &stmt).unwrap();
    assert!(out.contains("(est "), "{out}");
    assert!(out.contains("[actual: "), "{out}");
    assert!(out.contains("probes"), "{out}");
    assert!(out.contains(" ms, est="), "{out}");
    assert!(out.contains(" act="), "{out}");
    assert!(out.contains(" q="), "{out}");
    assert!(out.contains("sort: a.id"), "{out}");
    assert!(
        out.contains("actual: 10 row(s) in "),
        "summary line with row count: {out}"
    );
    assert!(out.contains("index_probes="), "{out}");
}

#[test]
fn explain_analyze_shows_actuals_for_executed_subqueries() {
    let db = two_table_db(20);
    let stmt =
        parse_sql("select a.id from t a where exists (select null from t b where b.id = a.k)")
            .unwrap();
    let out = explain_analyze(&db, &stmt).unwrap();
    assert!(out.contains("exists subquery:"), "{out}");
    assert!(
        !out.contains("never executed"),
        "the EXISTS ran once per outer row, its steps must show actuals: {out}"
    );
    // The subquery's probe step records one invocation per rescan.
    assert!(out.contains("20 invocation(s)"), "{out}");
}

#[test]
fn explain_analyze_marks_never_executed_subqueries() {
    let db = two_table_db(5);
    let stmt = parse_sql(
        "select a.id from t a where 1 = 2 and exists (select null from t b where b.id = a.id)",
    )
    .unwrap();
    let out = explain_analyze(&db, &stmt).unwrap();
    assert!(out.contains("[actual: never executed]"), "{out}");
}
