//! Property test: `parse(render(ast)) == ast` for generated SQL ASTs —
//! the textual SQL path must be lossless for everything the translators
//! can emit.

use proptest::prelude::*;
use relstore::Value;
use sqlexec::ast::{CmpOp, Expr, OrderKey, Projection, Select, SelectStmt, TableRef};
use sqlexec::{parse_sql, render_stmt};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite floats with exact decimal text form (so text roundtrips).
        (-1000i32..1000, 1u32..100).prop_map(|(a, b)| Value::Float(a as f64 + b as f64 / 100.0)),
        "[a-z' ]{0,8}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..4).prop_map(Value::Bytes),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_col() -> impl Strategy<Value = Expr> {
    (
        prop_oneof![Just("t1"), Just("t2"), Just("F_Paths")],
        prop_oneof![Just("id"), Just("dewey_pos"), Just("path"), Just("x")],
    )
        .prop_map(|(q, n)| Expr::column(q, n))
}

fn arb_scalar() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_col(),
        arb_value().prop_map(Expr::Literal),
        (arb_col(), arb_value())
            .prop_map(|(c, v)| Expr::Concat(Box::new(c), Box::new(Expr::Literal(v)))),
    ]
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let cmp = (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        arb_scalar(),
        arb_scalar(),
    )
        .prop_map(|(op, l, r)| Expr::Cmp {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        });
    let between =
        (arb_col(), arb_scalar(), arb_scalar(), any::<bool>()).prop_map(|(e, lo, hi, negated)| {
            Expr::Between {
                expr: Box::new(e),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            }
        });
    let isnull = (arb_col(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
        expr: Box::new(e),
        negated,
    });
    let regexp = arb_col().prop_map(|c| Expr::RegexpLike {
        subject: Box::new(c),
        pattern: "^/a(/[^/]+)*/b$".to_string(),
    });
    let leaf = prop_oneof![cmp, between, isnull, regexp];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|v| v.into_iter().reduce(|a, b| a.and(b)).expect("non-empty")),
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|v| v.into_iter().reduce(|a, b| a.or(b)).expect("non-empty")),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.prop_map(|e| {
                Expr::Exists(Box::new(Select {
                    distinct: false,
                    projections: vec![Projection {
                        expr: Expr::Literal(Value::Null),
                        alias: None,
                    }],
                    from: vec![TableRef::new("t2", "t2")],
                    where_clause: Some(e),
                }))
            }),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        proptest::option::of(arb_pred()),
        any::<bool>(),
        1usize..3,
        any::<bool>(),
    )
        .prop_map(|(w, distinct, branches, desc)| {
            let mk = |w: Option<Expr>| Select {
                distinct,
                projections: vec![
                    Projection {
                        expr: Expr::column("t1", "id"),
                        alias: Some("id".to_string()),
                    },
                    Projection {
                        expr: Expr::column("t1", "dewey_pos"),
                        alias: Some("dewey_pos".to_string()),
                    },
                ],
                from: vec![TableRef::new("T", "t1"), TableRef::new("U", "t2")],
                where_clause: w,
            };
            SelectStmt {
                branches: (0..branches).map(|_| mk(w.clone())).collect(),
                order_by: vec![OrderKey {
                    expr: Expr::Column {
                        qualifier: None,
                        name: "dewey_pos".to_string(),
                    },
                    desc,
                }],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_is_identity(stmt in arb_stmt()) {
        let sql = render_stmt(&stmt);
        let reparsed = parse_sql(&sql)
            .unwrap_or_else(|e| panic!("render output must parse: {e}\nsql: {sql}"));
        prop_assert_eq!(&reparsed, &stmt, "sql: {}", sql);
    }
}
