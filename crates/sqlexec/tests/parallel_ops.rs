//! Serial-vs-parallel equivalence for the operators parallelized on top
//! of the partitioned branch pipeline: the final ORDER BY merge sort,
//! UNION arm fan-out, the hash-join build side, and COUNT(*) partial
//! aggregation. Every operator must return the same rows in the same
//! order with the same core work counters (`rows_scanned`,
//! `index_probes`, `predicate_evals`) under ForceOff, ForceOn, and Auto
//! — Auto pinned to a deterministic cost model via `set_cost_override`,
//! so these tests cannot flap as the process-wide model learns.
//!
//! The pool is process-global, so tests that resize it (or that assert
//! on fork counters) serialize on one mutex.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{CostModel, ExecStats, Executor, ParallelMode};

/// Every test takes this guard: the pool size and the cost-model
/// override's visibility to forked decisions are process-global.
fn seq() -> std::sync::MutexGuard<'static, ()> {
    static SEQ: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match SEQ.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn pool4() {
    ppf_pool::set_threads(4);
}

fn with_mode<R>(mode: ParallelMode, f: impl FnOnce() -> R) -> R {
    let prev = sqlexec::set_parallel_mode(mode);
    let r = f();
    sqlexec::set_parallel_mode(prev);
    r
}

/// A cost model that prices every operator as enormous and the fork as
/// free: Auto forks everything fork-able, deterministically.
fn fork_everything() -> CostModel {
    CostModel {
        row_ns: 1e6,
        scan_ns: 1e6,
        hash_ns: 1e6,
        sort_cmp_ns: 1e6,
        fork_ns: 0.0,
        chunk_ns: 1.0,
        efficiency: 1.0,
    }
}

/// A cost model with zero parallel efficiency: Auto never forks.
fn fork_nothing() -> CostModel {
    CostModel {
        efficiency: 0.0,
        fork_ns: 1e18,
        ..CostModel::default()
    }
}

fn with_override<R>(m: CostModel, f: impl FnOnce() -> R) -> R {
    let prev = sqlexec::set_cost_override(Some(m));
    let r = f();
    sqlexec::set_cost_override(prev);
    r
}

fn run(db: &Database, sql: &str) -> (Vec<Vec<Value>>, ExecStats) {
    let exec = Executor::new(db);
    let rs = exec.query(sql).unwrap();
    (rs.rows, exec.stats())
}

fn assert_core_counters_equal(s: &ExecStats, p: &ExecStats) {
    assert_eq!(p.rows_scanned, s.rows_scanned, "serial {s:?} vs par {p:?}");
    assert_eq!(p.index_probes, s.index_probes, "serial {s:?} vs par {p:?}");
    assert_eq!(
        p.predicate_evals, s.predicate_evals,
        "serial {s:?} vs par {p:?}"
    );
}

fn paths_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "Paths",
        &[("id", ColType::Int), ("path", ColType::Str)],
    ))
    .unwrap();
    let t = db.table_mut("Paths").unwrap();
    for i in 0..rows {
        // Non-monotone path strings so ORDER BY path actually permutes.
        let path = format!("/site/n{}/item{}", (i * 37) % 101, i);
        t.insert(vec![Value::Int(i), Value::Str(path)]).unwrap();
    }
    db
}

// ----- ORDER BY: parallel merge sort -----

/// Sorts on a non-projected (computed) key plus a projected tiebreak,
/// descending — the shape that exercises both arms of `cmp_keyed`.
const ORDER_BY: &str = "select P.id from Paths P where P.id >= 0 order by P.path desc, P.id";

#[test]
fn parallel_order_by_matches_serial_in_every_mode() {
    let _g = seq();
    pool4();
    let db = paths_db(1500);

    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || run(&db, ORDER_BY));
    assert_eq!(serial.len(), 1500);
    assert_eq!(s_stats.par_tasks, 0);

    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || run(&db, ORDER_BY));
    assert_eq!(forced, serial, "parallel sort changed rows or order");
    assert!(f_stats.par_tasks >= 1, "{f_stats:?}");
    assert_core_counters_equal(&s_stats, &f_stats);

    let (auto, a_stats) = with_mode(ParallelMode::Auto, || {
        with_override(fork_everything(), || run(&db, ORDER_BY))
    });
    assert_eq!(auto, serial, "auto parallel sort changed rows or order");
    assert!(a_stats.par_tasks >= 1, "{a_stats:?}");
    assert_core_counters_equal(&s_stats, &a_stats);
}

/// Equal sort keys everywhere: the k-way merge must reproduce the serial
/// stable sort's tie-break (leftmost chunk first), byte for byte.
#[test]
fn parallel_sort_is_stable_on_ties() {
    let _g = seq();
    pool4();
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "T",
        &[("id", ColType::Int), ("k", ColType::Int)],
    ))
    .unwrap();
    let t = db.table_mut("T").unwrap();
    for i in 0..800i64 {
        t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
    }
    let sql = "select T.id from T where T.id >= 0 order by T.k";
    let (serial, _) = with_mode(ParallelMode::ForceOff, || run(&db, sql));
    let (forced, f) = with_mode(ParallelMode::ForceOn, || run(&db, sql));
    assert_eq!(
        forced, serial,
        "tie-break order changed under parallel sort"
    );
    assert!(f.par_tasks >= 1, "{f:?}");
}

// ----- UNION: concurrent arm execution -----

const UNION: &str = "select P.id from Paths P where REGEXP_LIKE(P.path, 'item1[0-9]$') \
     union select P.id from Paths P where REGEXP_LIKE(P.path, 'item[0-9]$') \
     union select P.id from Paths P where P.id < 25 \
     order by id";

#[test]
fn parallel_union_arms_match_serial_in_every_mode() {
    let _g = seq();
    pool4();
    let db = paths_db(900);

    sqlexec::clear_filter_caches();
    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || run(&db, UNION));
    assert!(!serial.is_empty());
    assert_eq!(s_stats.par_tasks, 0);

    sqlexec::clear_filter_caches();
    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || run(&db, UNION));
    assert_eq!(forced, serial, "parallel UNION changed the result");
    assert!(f_stats.par_tasks >= 1, "{f_stats:?}");
    assert_core_counters_equal(&s_stats, &f_stats);

    sqlexec::clear_filter_caches();
    let (auto, a_stats) = with_mode(ParallelMode::Auto, || {
        with_override(fork_everything(), || run(&db, UNION))
    });
    assert_eq!(auto, serial, "auto parallel UNION changed the result");
    assert!(a_stats.par_tasks >= 1, "{a_stats:?}");
    assert_core_counters_equal(&s_stats, &a_stats);
}

/// Overlapping arms: UNION (distinct) must still deduplicate across
/// arms after the concurrent fan-out, in the serial emission order.
#[test]
fn parallel_union_distinct_dedups_across_arms() {
    let _g = seq();
    pool4();
    let db = paths_db(400);
    let sql = "select P.id from Paths P where P.id < 300 \
               union select P.id from Paths P where P.id >= 200 \
               order by id";
    let (serial, _) = with_mode(ParallelMode::ForceOff, || run(&db, sql));
    assert_eq!(serial.len(), 400, "distinct collapsed the overlap");
    let (forced, _) = with_mode(ParallelMode::ForceOn, || run(&db, sql));
    assert_eq!(forced, serial);
}

// ----- Hash join: partitioned build side -----

fn hash_join_db(build_rows: i64, probe_rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "R",
        &[("id", ColType::Int), ("k", ColType::Int)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "S",
        &[("id", ColType::Int), ("k", ColType::Int)],
    ))
    .unwrap();
    {
        let r = db.table_mut("R").unwrap();
        for i in 0..probe_rows {
            r.insert(vec![Value::Int(i), Value::Int(i % 50)]).unwrap();
        }
    }
    {
        let s = db.table_mut("S").unwrap();
        for i in 0..build_rows {
            // Sprinkle NULLs: they must be skipped by every build path.
            let k = if i % 97 == 0 {
                Value::Null
            } else {
                Value::Int(i % 50)
            };
            s.insert(vec![Value::Int(1000 + i), k]).unwrap();
        }
    }
    db
}

const HASH_JOIN: &str = "select S.id from R, S where S.k = R.k and R.id < 8 order by S.id, R.id";

#[test]
fn parallel_hash_build_matches_serial_in_every_mode() {
    let _g = seq();
    pool4();
    let db = hash_join_db(2000, 60);

    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || run(&db, HASH_JOIN));
    assert!(!serial.is_empty());

    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || run(&db, HASH_JOIN));
    assert_eq!(forced, serial, "partitioned hash build changed the result");
    assert!(f_stats.par_tasks >= 1, "{f_stats:?}");
    assert_core_counters_equal(&s_stats, &f_stats);

    let (auto, a_stats) = with_mode(ParallelMode::Auto, || {
        with_override(fork_everything(), || run(&db, HASH_JOIN))
    });
    assert_eq!(auto, serial, "auto hash build changed the result");
    assert_core_counters_equal(&s_stats, &a_stats);
}

// ----- COUNT(*): per-chunk partial aggregation -----

fn dewey_db(contexts: u8, children: u8) -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "A",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        let a = db.table_mut("A").unwrap();
        for i in 0..contexts {
            a.insert(vec![Value::Int(i as i64), Value::Bytes(vec![0, 0, i])])
                .unwrap();
        }
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = db.table_mut("F").unwrap();
        let mut id = 1000i64;
        for i in 0..contexts {
            for j in 0..children {
                f.insert(vec![Value::Int(id), Value::Bytes(vec![0, 0, i, 0, 0, j])])
                    .unwrap();
                id += 1;
            }
        }
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }
    db
}

const COUNT_JOIN: &str = "select count(*) from A, F \
     where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF'";

#[test]
fn parallel_count_star_matches_serial_in_every_mode() {
    let _g = seq();
    pool4();
    let db = dewey_db(80, 6);

    let (serial, s_stats) = with_mode(ParallelMode::ForceOff, || run(&db, COUNT_JOIN));
    assert_eq!(serial, vec![vec![Value::Int(480)]]);
    assert_eq!(s_stats.par_tasks, 0);

    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || run(&db, COUNT_JOIN));
    assert_eq!(forced, serial, "partial-aggregate COUNT(*) diverged");
    assert!(f_stats.par_tasks >= 1, "{f_stats:?}");
    assert_core_counters_equal(&s_stats, &f_stats);

    let (auto, a_stats) = with_mode(ParallelMode::Auto, || {
        with_override(fork_everything(), || run(&db, COUNT_JOIN))
    });
    assert_eq!(auto, serial, "auto COUNT(*) diverged");
    assert!(a_stats.par_tasks >= 1, "{a_stats:?}");
    assert_core_counters_equal(&s_stats, &a_stats);
}

// ----- Cost-model gating and the single-thread pool -----

/// A pinned zero-efficiency model keeps Auto serial even on work that
/// ForceOn happily partitions — and the result is identical either way.
#[test]
fn auto_with_pinned_serial_model_never_forks() {
    let _g = seq();
    pool4();
    let db = dewey_db(80, 6);
    let sql = "select F.id from A, F \
               where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
               order by F.dewey_pos, F.id";
    let (serial, _) = with_mode(ParallelMode::ForceOff, || run(&db, sql));
    let (auto, a_stats) = with_mode(ParallelMode::Auto, || {
        with_override(fork_nothing(), || run(&db, sql))
    });
    assert_eq!(auto, serial);
    assert_eq!(a_stats.par_tasks, 0, "{a_stats:?}");
}

/// With one pool thread there is nothing to fork onto: every mode runs
/// the serial engine and records zero fan-outs.
#[test]
fn single_thread_pool_stays_serial_even_forced() {
    let _g = seq();
    ppf_pool::set_threads(1);
    let db = paths_db(600);
    let (serial, _) = with_mode(ParallelMode::ForceOff, || run(&db, ORDER_BY));
    let (forced, f_stats) = with_mode(ParallelMode::ForceOn, || run(&db, ORDER_BY));
    assert_eq!(forced, serial);
    assert_eq!(f_stats.par_tasks, 0, "{f_stats:?}");
    pool4();
}

/// EXPLAIN ANALYZE surfaces the cost model's fork/serial decisions.
#[test]
fn explain_analyze_reports_par_decisions() {
    let _g = seq();
    pool4();
    let db = paths_db(800);
    let stmt = sqlexec::parse_sql(ORDER_BY).unwrap();
    let out = with_mode(ParallelMode::Auto, || {
        with_override(fork_everything(), || {
            sqlexec::explain_analyze(&db, &stmt).unwrap()
        })
    });
    assert!(out.contains("par_decision: "), "{out}");
    assert!(out.contains(":fork(") || out.contains(":serial("), "{out}");
}
