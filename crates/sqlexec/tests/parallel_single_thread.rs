//! With a one-thread pool the engine must never partition — even under
//! `ParallelMode::ForceOn` — so `PPF_THREADS=1` reproduces the serial
//! engine exactly. Isolated in its own binary because it pins the
//! process-wide pool to one thread, which would starve the equivalence
//! tests of their partitioning.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::{Executor, ParallelMode};

#[test]
fn single_thread_pool_never_partitions_even_when_forced() {
    ppf_pool::set_threads(1);
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "A",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[("id", ColType::Int), ("dewey_pos", ColType::Bytes)],
    ))
    .unwrap();
    {
        let a = db.table_mut("A").unwrap();
        for i in 0..40u8 {
            a.insert(vec![Value::Int(i as i64), Value::Bytes(vec![0, 0, i])])
                .unwrap();
        }
        a.create_index("a_dewey", &["dewey_pos"]).unwrap();
    }
    {
        let f = db.table_mut("F").unwrap();
        let mut id = 1000i64;
        for i in 0..40u8 {
            for j in 0..4u8 {
                f.insert(vec![Value::Int(id), Value::Bytes(vec![0, 0, i, 0, 0, j])])
                    .unwrap();
                id += 1;
            }
        }
        f.create_index("f_dewey", &["dewey_pos"]).unwrap();
    }

    let prev = sqlexec::set_parallel_mode(ParallelMode::ForceOn);
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select F.id from A, F \
             where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
             order by F.dewey_pos, F.id",
        )
        .unwrap();
    sqlexec::set_parallel_mode(prev);

    assert_eq!(rs.rows.len(), 160);
    let stats = exec.stats();
    assert_eq!(stats.par_tasks, 0, "{stats:?}");
    assert_eq!(stats.par_chunks, 0, "{stats:?}");
}
