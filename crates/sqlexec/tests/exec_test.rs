//! End-to-end executor tests on a small, hand-checkable database shaped
//! like the paper's shredded relations.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::Executor;

/// Build a miniature shredded database: elements A, B, F with Dewey
/// positions and a Paths relation, as the schema-aware mapping would.
fn sample_db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "Paths",
        &[("id", ColType::Int), ("path", ColType::Str)],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "A",
        &[
            ("id", ColType::Int),
            ("par_id", ColType::Int),
            ("path_id", ColType::Int),
            ("dewey_pos", ColType::Bytes),
            ("x", ColType::Int),
        ],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "F",
        &[
            ("id", ColType::Int),
            ("par_id", ColType::Int),
            ("path_id", ColType::Int),
            ("dewey_pos", ColType::Bytes),
            ("text", ColType::Str),
        ],
    ))
    .unwrap();

    let paths = db.table_mut("Paths").unwrap();
    paths
        .insert(vec![Value::Int(1), Value::from("/A")])
        .unwrap();
    paths
        .insert(vec![Value::Int(2), Value::from("/A/B/F")])
        .unwrap();
    paths
        .insert(vec![Value::Int(3), Value::from("/A/C/F")])
        .unwrap();
    paths.create_index("paths_id", &["id"]).unwrap();

    // One A element, dewey 1 -> bytes [0,0,1]
    let a = db.table_mut("A").unwrap();
    a.insert(vec![
        Value::Int(1),
        Value::Null,
        Value::Int(1),
        Value::Bytes(vec![0, 0, 1]),
        Value::Int(4),
    ])
    .unwrap();
    a.create_index("a_id", &["id"]).unwrap();
    a.create_index("a_dewey", &["dewey_pos"]).unwrap();

    // F elements: two under /A/B/F (dewey 1.1.1, 1.1.2), one under /A/C/F
    // (dewey 1.2.1).
    let f = db.table_mut("F").unwrap();
    for (id, dewey, path_id, text) in [
        (10, vec![0, 0, 1, 0, 0, 1, 0, 0, 1], 2, "one"),
        (11, vec![0, 0, 1, 0, 0, 1, 0, 0, 2], 2, "2"),
        (12, vec![0, 0, 1, 0, 0, 2, 0, 0, 1], 3, "three"),
    ] {
        f.insert(vec![
            Value::Int(id),
            Value::Int(1),
            Value::Int(path_id),
            Value::Bytes(dewey),
            Value::from(text),
        ])
        .unwrap();
    }
    f.create_index("f_id", &["id"]).unwrap();
    f.create_index("f_par", &["par_id"]).unwrap();
    f.create_index("f_dewey_path", &["dewey_pos", "path_id"])
        .unwrap();
    db
}

#[test]
fn regexp_path_filter_with_join() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select F.id from F, Paths F_Paths \
             where F.path_id = F_Paths.id \
             and REGEXP_LIKE(F_Paths.path, '^/A/B(/[^/]+)*/F$') \
             order by F.dewey_pos",
        )
        .unwrap();
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![10, 11]);
}

#[test]
fn dewey_between_descendant_join() {
    // All F descendants of A via the paper's Lemma 1 condition.
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select F.id from A, F \
             where F.dewey_pos between A.dewey_pos and A.dewey_pos || x'FF' \
             and A.x = 4 order by F.dewey_pos",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    // The BETWEEN lower bound includes A itself only for equal keys, and F
    // keys are strictly longer, so all three F rows qualify.
    let stats = exec.stats();
    assert!(stats.index_probes > 0, "expected index range probe");
}

#[test]
fn exists_correlated_subquery() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select A.id from A where exists (\
             select null from F where F.par_id = A.id and F.text = 2)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);

    let rs2 = exec
        .query(
            "select A.id from A where exists (\
             select null from F where F.par_id = A.id and F.text = 'nope')",
        )
        .unwrap();
    assert!(rs2.rows.is_empty());
}

#[test]
fn union_dedups_and_orders_by_output_column() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query(
            "select F.id, F.dewey_pos from F where F.path_id = 2 \
             union select F.id, F.dewey_pos from F where F.text = '2' \
             order by dewey_pos",
        )
        .unwrap();
    // F#11 satisfies both branches; UNION must dedup it.
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![10, 11]);
}

#[test]
fn scalar_count_subquery() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query("select A.id from A where (select count(*) from F where F.par_id = A.id) = 3")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs0 = exec
        .query("select A.id from A where (select count(*) from F where F.text = 'zzz') = 0")
        .unwrap();
    assert_eq!(rs0.rows.len(), 1, "COUNT(*) over empty set must be 0");
}

#[test]
fn three_valued_null_logic() {
    let mut db = sample_db();
    // Add an F row with NULL text.
    db.table_mut("F")
        .unwrap()
        .insert(vec![
            Value::Int(13),
            Value::Int(1),
            Value::Int(3),
            Value::Bytes(vec![0, 0, 1, 0, 0, 3]),
            Value::Null,
        ])
        .unwrap();
    let exec = Executor::new(&db);
    // NULL <> 'one' is UNKNOWN, so row 13 must not appear...
    let rs = exec
        .query("select F.id from F where F.text <> 'one'")
        .unwrap();
    let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert!(!ids.contains(&13));
    // ...but IS NULL finds it.
    let rs2 = exec
        .query("select F.id from F where F.text is null")
        .unwrap();
    assert_eq!(rs2.rows.len(), 1);
    // NOT (NULL = x) is still UNKNOWN.
    let rs3 = exec
        .query("select F.id from F where not F.text = 'one'")
        .unwrap();
    let ids3: Vec<i64> = rs3.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert!(!ids3.contains(&13));
}

#[test]
fn implicit_text_number_comparison() {
    // F.text = 2 where text is a string column: Oracle-style implicit
    // conversion ('2' = 2 is true, 'one' = 2 is unknown, not an error).
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec.query("select F.id from F where F.text = 2").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(11));
}

#[test]
fn distinct_and_order_desc() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query("select distinct F.par_id from F order by F.par_id desc")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn concat_binary_strings() {
    let db = sample_db();
    let exec = Executor::new(&db);
    // following axis shape: F > A.dewey || x'FF' — nothing follows A here.
    let rs = exec
        .query("select F.id from A, F where F.dewey_pos > A.dewey_pos || x'FF'")
        .unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn error_messages() {
    let db = sample_db();
    let exec = Executor::new(&db);
    assert!(exec.query("select X.id from X").is_err());
    assert!(exec.query("select A.nope from A").is_err());
    assert!(exec.query("select A.id from A where A.x").is_err());
    assert!(exec
        .query("select A.id from A, F union select A.id from A order by F.dewey_pos")
        .is_err());
}

#[test]
fn column_naming_in_result() {
    let db = sample_db();
    let exec = Executor::new(&db);
    let rs = exec
        .query("select F.id as fid, F.text from F where F.id = 10")
        .unwrap();
    assert_eq!(rs.columns, vec!["fid".to_string(), "text".to_string()]);
}
