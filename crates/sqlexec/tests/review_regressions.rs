//! Regression tests for code-review findings: each test pins a behaviour
//! that used to be a panic or a silently wrong (empty) result.

use relstore::{ColType, Database, TableSchema, Value};
use sqlexec::Executor;

fn db() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "t",
        &[
            ("id", ColType::Int),
            ("s", ColType::Str),
            ("b", ColType::Bytes),
        ],
    ))
    .unwrap();
    {
        let t = db.table_mut("t").unwrap();
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::Str(format!("{i}")),
                Value::Bytes(vec![i as u8]),
            ])
            .unwrap();
        }
        t.create_index("t_id", &["id"]).unwrap();
        t.create_index("t_s", &["s"]).unwrap();
        // Composite with an Int leading column and Bytes suffix — the
        // shape where a fake 0xFF sentinel upper bound would be wrong.
        t.create_index("t_id_b", &["id", "b"]).unwrap();
    }
    db
}

#[test]
fn union_arity_mismatch_is_an_error_not_a_panic() {
    let d = db();
    let exec = Executor::new(&d);
    let err = exec
        .query("select t.id, t.s from t union select t.id from t order by s")
        .unwrap_err();
    assert!(err.to_string().contains("numbers of columns"), "{err}");
    // Same without ORDER BY: still rejected (dedup across widths).
    assert!(exec
        .query("select t.id, t.s from t union select t.id from t")
        .is_err());
}

#[test]
fn coercible_equality_on_indexed_column_still_matches() {
    // `id = '3'` must implicitly convert (Oracle-style), even though the
    // column is indexed — the planner must not probe the B-tree with a
    // type-incompatible key.
    let d = db();
    let exec = Executor::new(&d);
    let rs = exec.query("select t.id from t where t.id = '3'").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    // And the mirror case: a string column compared with a number.
    let rs2 = exec.query("select t.id from t where t.s = 7").unwrap();
    assert_eq!(rs2.rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn composite_index_inclusive_upper_bound_covers_all_suffixes() {
    // Range on the leading Int column of (id, b): every suffix of id=5
    // must be included, even though Bytes sort above any sentinel.
    let mut d = db();
    {
        let t = d.table_mut("t").unwrap();
        // a row whose Bytes suffix is longer than any fixed sentinel
        t.insert(vec![
            Value::Int(5),
            Value::Str("x".into()),
            Value::Bytes(vec![0xFF; 32]),
        ])
        .unwrap();
    }
    let exec = Executor::new(&d);
    let rs = exec
        .query("select t.s from t where t.id between 4 and 5")
        .unwrap();
    assert_eq!(rs.rows.len(), 3, "rows 4, 5 and the long-suffix 5");
}

#[test]
fn shadowed_alias_in_subquery_is_uncorrelated() {
    // The inner `t` shadows the outer `t`; the EXISTS is uncorrelated and
    // true for every outer row (u joins the INNER t, never the outer one).
    let d = db();
    let exec = Executor::new(&d);
    let rs = exec
        .query(
            "select t.id from t where exists (\
             select u.id from t u, t where u.id = t.id and t.id = 0)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10, "EXISTS is constant-true for all rows");
}

#[test]
fn unqualified_columns_resolve_with_the_full_environment() {
    let mut d = Database::new();
    d.create_table(TableSchema::new("a", &[("x", ColType::Int)]))
        .unwrap();
    d.create_table(TableSchema::new("b", &[("v", ColType::Str)]))
        .unwrap();
    d.table_mut("a")
        .unwrap()
        .insert(vec![Value::Int(1)])
        .unwrap();
    d.table_mut("b")
        .unwrap()
        .insert(vec![Value::from("hit")])
        .unwrap();
    d.table_mut("b")
        .unwrap()
        .insert(vec![Value::from("miss")])
        .unwrap();
    let exec = Executor::new(&d);
    // `v` is unqualified and lives only in `b`; whatever join order the
    // planner picks, the filter must see it.
    let rs = exec.query("select a.x from a, b where v = 'hit'").unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn correlated_probes_still_use_indexes() {
    // The type guard must not disable the index-nested-loop probe for the
    // bread-and-butter correlated case (both sides Int).
    let d = db();
    let exec = Executor::new(&d);
    let rs = exec
        .query(
            "select t.id from t where exists (\
             select null from t u where u.id = t.id)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10);
    let stats = exec.stats();
    assert!(
        stats.index_probes >= 10,
        "expected per-row index probes, got {stats:?}"
    );
}
