//! `ppfx` — interactive XPath-on-relations shell.
//!
//! ```text
//! ppfx --schema library.dsl data1.xml data2.xml
//! ppfx --dtd site.dtd site.xml
//! ppfx --xsd library.xsd library.xml
//! ppfx --edge data.xml                 # schema-oblivious mapping
//! ```
//!
//! Then type XPath queries, or dot-commands:
//!
//! ```text
//! > //book[author='Codd']
//! > .sql //book            show the generated SQL
//! > .explain //book        show the physical plan
//! > .analyze //book        execute and show the plan with actual rows/probes/time
//! > .stats                 show the metrics registry + per-table planner statistics
//! > .trace on|off          print each query's phase trace
//! > .profile on            start the low-overhead event profiler
//! > .profile off           stop it and print the per-worker utilization table
//! > .profile save t.json   stop it and also write a Perfetto-loadable chrome trace
//! > .timeout 250           abort queries after 250 ms (.timeout off to clear)
//! > .maxrows 100000        abort queries past a scanned-row budget
//! > .publish 42            reconstruct element 42 as XML
//! > .tables                list relations and row counts
//! > .marking               show the §4.5 U-P/F-P/I-P marks
//! > .help  .quit
//! ```
//!
//! `--trace-json FILE` appends one JSON-lines trace record per query.

use std::io::{BufRead, Write};

use obs::TraceSink;
use ppf_core::{publish_element, EdgeDb, QueryLimits, XmlDb};

enum Backend {
    Schema(Box<XmlDb>),
    Edge(Box<EdgeDb>),
}

/// REPL state: the database plus the observability switches.
struct Session {
    backend: Backend,
    /// `.trace on` — print each query's span tree after the rows.
    show_trace: bool,
    /// `.timeout MS` — per-query deadline.
    timeout: Option<std::time::Duration>,
    /// `.maxrows N` — per-query scanned-row budget.
    max_rows: Option<u64>,
    /// `--trace-json FILE` — one JSON record per query.
    trace_sink: Option<obs::JsonLinesSink<std::fs::File>>,
}

impl Session {
    fn limits(&self) -> QueryLimits {
        let mut l = QueryLimits::none();
        if let Some(t) = self.timeout {
            l = l.with_timeout(t);
        }
        if let Some(n) = self.max_rows {
            l = l.with_max_rows(n);
        }
        l
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut schema: Option<xmlschema::Schema> = None;
    let mut edge = false;
    let mut docs: Vec<String> = Vec::new();
    let mut trace_json: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-json" => {
                trace_json = Some(
                    args.next()
                        .ok_or_else(|| format!("{arg} requires a file path"))?,
                );
            }
            "--schema" | "--dtd" | "--xsd" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("{arg} requires a file path"))?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let parsed = match arg.as_str() {
                    "--schema" => xmlschema::parse_schema(&text),
                    "--dtd" => xmlschema::parse_dtd(&text),
                    _ => xmlschema::parse_xsd(&text),
                }
                .map_err(|e| e.to_string())?;
                schema = Some(parsed);
            }
            "--edge" => edge = true,
            "--help" | "-h" => {
                println!("usage: ppfx [--schema FILE | --dtd FILE | --xsd FILE | --edge] [--trace-json FILE] doc.xml...");
                return Ok(());
            }
            other => docs.push(other.to_string()),
        }
    }

    let mut backend = match (edge, schema) {
        (true, _) => Backend::Edge(Box::new(EdgeDb::new())),
        (false, Some(s)) => Backend::Schema(Box::new(XmlDb::new(&s).map_err(|e| e.to_string())?)),
        (false, None) => {
            return Err(
                "provide --schema/--dtd/--xsd (schema-aware) or --edge (oblivious)".to_string(),
            )
        }
    };

    for path in &docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let loaded = match &mut backend {
            Backend::Schema(db) => db.load_xml(&xml).map_err(|e| e.to_string())?,
            Backend::Edge(db) => db.load_xml(&xml).map_err(|e| e.to_string())?,
        };
        eprintln!("loaded {path} as document {}", loaded.doc_id);
    }
    match &mut backend {
        Backend::Schema(db) => db.finalize().map_err(|e| e.to_string())?,
        Backend::Edge(db) => db.finalize().map_err(|e| e.to_string())?,
    }
    let db_ref = match &backend {
        Backend::Schema(db) => db.db(),
        Backend::Edge(db) => db.db(),
    };
    eprintln!(
        "{} relations, {} rows total. Type an XPath query or .help",
        db_ref.len(),
        db_ref.total_rows()
    );

    let trace_sink = match trace_json {
        None => None,
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
            eprintln!("writing query traces to {path}");
            Some(obs::JsonLinesSink::new(file))
        }
    };
    let mut session = Session {
        backend,
        show_trace: false,
        timeout: None,
        max_rows: None,
        trace_sink,
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match handle(&mut session, line) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Some(sink) = &mut session.trace_sink {
        sink.flush();
    }
    Ok(())
}

/// Process one REPL line. Returns Ok(true) to quit.
fn handle(session: &mut Session, line: &str) -> Result<bool, String> {
    let backend = &session.backend;
    if line == ".quit" || line == ".exit" {
        return Ok(true);
    }
    if line == ".help" {
        println!(
            ".sql XPATH      show the generated SQL\n\
             .explain XPATH  show the physical plan\n\
             .analyze XPATH  execute; show the plan with actual rows/probes/time\n\
             .stats          show the metrics registry + per-table planner statistics\n\
             .trace on|off   print each query's phase trace (currently {})\n\
             .profile on|off|save PATH  event profiler: worker timelines + chrome trace (currently {})\n\
             .timeout MS|off abort queries past a deadline (currently {})\n\
             .maxrows N|off  abort queries past a scanned-row budget (currently {})\n\
             .publish ID     reconstruct element ID as XML (schema-aware only)\n\
             .tables         list relations and row counts\n\
             .marking        show the §4.5 marks (schema-aware only)\n\
             .quit           exit",
            if session.show_trace { "on" } else { "off" },
            if obs::profile::is_attached() {
                "on"
            } else {
                "off"
            },
            session
                .timeout
                .map(|t| format!("{}ms", t.as_millis()))
                .unwrap_or_else(|| "off".to_string()),
            session
                .max_rows
                .map(|n| n.to_string())
                .unwrap_or_else(|| "off".to_string()),
        );
        return Ok(false);
    }
    if line == ".stats" {
        let snap = obs::Registry::global().snapshot();
        if snap.counters.is_empty() && snap.histograms.is_empty() {
            println!("(no metrics recorded yet)");
        } else {
            print!("{}", snap.render());
        }
        // Planner statistics for the loaded document's tables: one line
        // per table, one indented line per column with data.
        let db = match backend {
            Backend::Schema(db) => db.db(),
            Backend::Edge(db) => db.db(),
        };
        for name in db.table_names() {
            let Some(table) = db.table(name) else {
                continue;
            };
            let Some(st) = relstore::stats::lookup(table) else {
                continue;
            };
            println!(
                "table {name}: {} rows (stats v{})",
                st.rows, st.table_version
            );
            for (col, cs) in table.schema.columns.iter().zip(&st.columns) {
                if cs.non_null == 0 {
                    continue;
                }
                let fanout = match cs.prefix_fanout {
                    Some(f) => format!(", prefix_fanout={f:.2}"),
                    None => String::new(),
                };
                println!(
                    "    {}: distinct={} nulls={} buckets={}{fanout}",
                    col.name,
                    cs.distinct,
                    cs.nulls,
                    cs.buckets.len(),
                );
            }
        }
        return Ok(false);
    }
    if let Some(arg) = line.strip_prefix(".trace") {
        match arg.trim() {
            "on" => {
                session.show_trace = true;
                println!("trace on");
            }
            "off" => {
                session.show_trace = false;
                println!("trace off");
            }
            _ => return Err("usage: .trace on|off".to_string()),
        }
        return Ok(false);
    }
    if let Some(arg) = line.strip_prefix(".profile") {
        let arg = arg.trim();
        match arg {
            "on" => {
                if obs::profile::attach() {
                    println!("profile on — run queries, then .profile off|save PATH");
                } else {
                    return Err("profiler already attached (use .profile off first)".to_string());
                }
            }
            "off" => match obs::profile::detach() {
                Some(profile) => print!("{}", profile.utilization_table()),
                None => return Err("profiler is not attached (use .profile on)".to_string()),
            },
            _ => match arg.strip_prefix("save ") {
                Some(path) => {
                    let path = path.trim();
                    let profile = obs::profile::detach()
                        .ok_or_else(|| "profiler is not attached (use .profile on)".to_string())?;
                    std::fs::write(path, profile.to_chrome_trace())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    print!("{}", profile.utilization_table());
                    println!("chrome trace written to {path} (load in Perfetto: ui.perfetto.dev)");
                }
                None => return Err("usage: .profile on|off|save PATH".to_string()),
            },
        }
        return Ok(false);
    }
    if let Some(arg) = line.strip_prefix(".timeout") {
        match arg.trim() {
            "off" => {
                session.timeout = None;
                println!("timeout off");
            }
            ms => match ms.parse::<u64>() {
                Ok(ms) => {
                    session.timeout = Some(std::time::Duration::from_millis(ms));
                    println!("timeout {ms}ms");
                }
                Err(_) => return Err("usage: .timeout MILLIS|off".to_string()),
            },
        }
        return Ok(false);
    }
    if let Some(arg) = line.strip_prefix(".maxrows") {
        match arg.trim() {
            "off" => {
                session.max_rows = None;
                println!("maxrows off");
            }
            n => match n.parse::<u64>() {
                Ok(n) => {
                    session.max_rows = Some(n);
                    println!("maxrows {n}");
                }
                Err(_) => return Err("usage: .maxrows N|off".to_string()),
            },
        }
        return Ok(false);
    }
    if let Some(q) = line.strip_prefix(".analyze ") {
        let (db, t) = match backend {
            Backend::Schema(db) => (db.db(), db.translate(q.trim()).map_err(|e| e.to_string())?),
            Backend::Edge(db) => (db.db(), db.translate(q.trim()).map_err(|e| e.to_string())?),
        };
        // `.analyze` executes the statement, so the session's
        // `.timeout`/`.maxrows` knobs apply exactly as they do to a
        // bare query.
        match t.stmt {
            None => println!("(statically empty)"),
            Some(stmt) => print!(
                "{}",
                sqlexec::explain_analyze_with_limits(db, &stmt, session.limits())
                    .map_err(|e| format!("[{}] {e}", e.kind()))?
            ),
        }
        return Ok(false);
    }
    if line == ".tables" {
        let db = match backend {
            Backend::Schema(db) => db.db(),
            Backend::Edge(db) => db.db(),
        };
        for name in db.table_names() {
            println!(
                "{name}: {} rows",
                db.table(name).map(|t| t.len()).unwrap_or(0)
            );
        }
        return Ok(false);
    }
    if line == ".marking" {
        match backend {
            Backend::Schema(db) => {
                for (name, mark) in db.store().marking().iter() {
                    println!("{name}: {mark:?}");
                }
            }
            Backend::Edge(_) => println!("(the Edge mapping has no schema marking)"),
        }
        return Ok(false);
    }
    if let Some(rest) = line.strip_prefix(".publish ") {
        let id: i64 = rest
            .trim()
            .parse()
            .map_err(|_| "usage: .publish <element id>".to_string())?;
        match backend {
            Backend::Schema(db) => {
                println!(
                    "{}",
                    publish_element(db.store(), id).map_err(|e| e.to_string())?
                )
            }
            Backend::Edge(_) => println!("(publishing needs the schema-aware mapping)"),
        }
        return Ok(false);
    }
    if let Some(q) = line.strip_prefix(".sql ") {
        let sql = match backend {
            Backend::Schema(db) => db.sql_for(q.trim()).map_err(|e| e.to_string())?,
            Backend::Edge(db) => db.sql_for(q.trim()).map_err(|e| e.to_string())?,
        };
        println!(
            "{}",
            sql.unwrap_or_else(|| "(statically empty)".to_string())
        );
        return Ok(false);
    }
    if let Some(q) = line.strip_prefix(".explain ") {
        let (db, t) = match backend {
            Backend::Schema(db) => (db.db(), db.translate(q.trim()).map_err(|e| e.to_string())?),
            Backend::Edge(db) => (db.db(), db.translate(q.trim()).map_err(|e| e.to_string())?),
        };
        match t.stmt {
            None => println!("(statically empty)"),
            Some(stmt) => print!(
                "{}",
                sqlexec::explain_stmt(db, &stmt).map_err(|e| e.to_string())?
            ),
        }
        return Ok(false);
    }
    if line.starts_with('.') {
        return Err(format!("unknown command `{line}` (try .help)"));
    }

    // A bare XPath query, under the session's .timeout/.maxrows limits.
    // Typed failures print tagged by lifecycle phase, e.g.
    // `[limit] engine error: resource limit exceeded: row budget exceeded`.
    let limits = session.limits();
    let t0 = std::time::Instant::now();
    let (result, trace) = match backend {
        Backend::Schema(db) => db
            .query_traced_with_limits(line, limits)
            .map_err(|e| format!("[{}] {e}", e.kind()))?,
        Backend::Edge(db) => db
            .query_traced_with_limits(line, limits)
            .map_err(|e| format!("[{}] {e}", e.kind()))?,
    };
    let elapsed = t0.elapsed();
    if let Some(sink) = &mut session.trace_sink {
        sink.emit(&trace);
        sink.flush();
    }
    for row in result.rows.rows.iter().take(20) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    if result.rows.rows.len() > 20 {
        println!("... ({} more rows)", result.rows.rows.len() - 20);
    }
    println!(
        "{} row(s) in {:.2}ms ({} rows scanned, {} index probes, {} path filters, {} regex matches)",
        result.rows.rows.len(),
        elapsed.as_secs_f64() * 1e3,
        result.stats.rows_scanned,
        result.stats.index_probes,
        result.engine.path_filters,
        result.engine.vm_match_calls,
    );
    if session.show_trace {
        print!("{}", trace.render());
    }
    Ok(false)
}
