//! `ppfd` — the PPF XPath daemon: one [`ppf_core::SharedEngine`] served
//! over TCP with admission control, per-query deadlines, hot reload of
//! the data source (SIGHUP or the protocol `reload` verb), and graceful
//! drain on SIGTERM/SIGINT or the protocol `shutdown` verb.
//!
//! ```text
//! ppfd --schema library.dsl data.xml            # serve loaded documents
//! ppfd --xmark 0.05 --listen 127.0.0.1:7878     # serve a generated XMark doc
//! ppfd --xmark 0.02 --max-inflight 4 --policy shed
//! kill -HUP $(pidof ppfd)                       # rebuild + swap the snapshot
//! ```
//!
//! The bound address is announced on stdout as `ppfd listening on ADDR`
//! (scripts wait for that line). On drain the final metrics snapshot is
//! written to stderr and the process exits 0.
//!
//! SIGHUP (or `reload`) rebuilds the startup data source — re-reading
//! document files from disk, or regenerating the XMark document — into a
//! staging store off the serving path, then swaps it in atomically.
//! In-flight queries finish on the snapshot they pinned; any reload
//! failure (missing file, malformed XML, panic) leaves the old snapshot
//! serving and is reported on stderr with a typed kind.
//!
//! Chaos builds (`--features chaos`) additionally accept `--chaos SPEC`
//! to install a fault plan at startup; see `ppf_server::fault` for the
//! spec grammar (including `reload_fault=...` load-path faults).

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use ppf_core::{ReloadError, SharedEngine, XmlDb};
use ppf_server::{serve_with_reload, AdmissionPolicy, ReloadFn, ServerConfig};

/// Set from the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Set by SIGHUP; the main loop turns it into one reload attempt.
static RELOAD: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(sig: i32) {
    // SIGHUP = 1 everywhere we run; everything else we registered means
    // "drain". Only atomics in here (async-signal-safe).
    if sig == 1 {
        RELOAD.store(true, SeqCst);
    } else {
        SHUTDOWN.store(true, SeqCst);
    }
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: the handler only stores to atomics, which is
    // async-signal-safe; `signal` itself is a plain libc call.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGHUP, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str =
    "usage: ppfd [--schema FILE | --dtd FILE | --xsd FILE doc.xml... | --xmark SCALE [--seed N]]\n\
     [--listen ADDR] [--threads N] [--max-inflight N] [--queue-depth N]\n\
     [--queue-wait-ms MS] [--policy queue|shed] [--per-conn N]\n\
     [--deadline-ms MS|0] [--idle-ms MS] [--drain-ms MS] [--chaos SPEC]\n\
     [--slow-ms MS] [--slowlog-cap N] [--metrics-every-ms MS]\n\
     [--event-threads N] [--max-conns N|0] [--sync-conns]";

/// The startup data-source recipe, kept so SIGHUP / the `reload` verb
/// can rebuild the exact same source into a fresh staging snapshot.
#[derive(Clone)]
enum Source {
    XMark {
        scale: f64,
        seed: u64,
    },
    /// Schema plus document paths: a reload re-reads every file from
    /// disk, so editing the documents and sending SIGHUP picks them up.
    Docs {
        schema: xmlschema::Schema,
        paths: Vec<String>,
    },
}

/// Parse → shred → finalize the source into a staging [`XmlDb`],
/// entirely off the serving path. Shared by startup and every reload;
/// failures classify onto the [`ReloadError`] taxonomy (I/O for
/// unreadable files, parse for malformed XML, shred for store errors).
fn build_db(source: &Source) -> Result<XmlDb, ReloadError> {
    let mut db = match source {
        Source::XMark { scale, seed } => {
            let doc = xmark::generate_xmark(xmark::XMarkConfig {
                scale: *scale,
                seed: *seed,
            });
            let mut db = XmlDb::new(&xmark::xmark_schema())?;
            db.load(&doc)?;
            db
        }
        Source::Docs { schema, paths } => {
            let mut db = XmlDb::new(schema)?;
            for path in paths {
                let xml = std::fs::read_to_string(path)
                    .map_err(|e| ReloadError::io(format!("cannot read {path}: {e}")))?;
                db.load_xml(&xml)?;
            }
            db
        }
    };
    db.finalize()?;
    Ok(db)
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut listen = "127.0.0.1:7878".to_string();
    let mut schema: Option<xmlschema::Schema> = None;
    let mut docs: Vec<String> = Vec::new();
    let mut xmark_scale: Option<f64> = None;
    let mut seed: u64 = 42;
    let mut threads: Option<usize> = None;
    let mut chaos: Option<String> = None;
    let mut cfg = ServerConfig::default();

    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => listen = value(&arg)?,
            "--xmark" => {
                xmark_scale = Some(
                    value(&arg)?
                        .parse()
                        .map_err(|_| "--xmark wants a scale factor".to_string())?,
                )
            }
            "--seed" => {
                seed = value(&arg)?
                    .parse()
                    .map_err(|_| "--seed wants an integer".to_string())?
            }
            "--threads" => {
                threads = Some(
                    value(&arg)?
                        .parse()
                        .map_err(|_| "--threads wants an integer".to_string())?,
                )
            }
            "--max-inflight" => cfg.max_inflight = parse_num(&value(&arg)?, &arg)?,
            "--queue-depth" => cfg.queue_depth = parse_num(&value(&arg)?, &arg)?,
            "--queue-wait-ms" => {
                cfg.queue_wait = Duration::from_millis(parse_num(&value(&arg)?, &arg)? as u64)
            }
            "--per-conn" => cfg.per_conn_cap = parse_num(&value(&arg)?, &arg)?,
            "--deadline-ms" => {
                let ms: u64 = parse_num(&value(&arg)?, &arg)? as u64;
                cfg.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--idle-ms" => {
                cfg.idle_timeout = Duration::from_millis(parse_num(&value(&arg)?, &arg)? as u64)
            }
            "--drain-ms" => {
                cfg.drain_grace = Duration::from_millis(parse_num(&value(&arg)?, &arg)? as u64)
            }
            "--policy" => {
                cfg.policy = match value(&arg)?.as_str() {
                    "queue" => AdmissionPolicy::Queue,
                    "shed" => AdmissionPolicy::Shed,
                    other => return Err(format!("--policy queue|shed, got {other:?}")),
                }
            }
            "--slow-ms" => {
                cfg.slow_query = Duration::from_millis(parse_num(&value(&arg)?, &arg)? as u64)
            }
            "--slowlog-cap" => cfg.slowlog_capacity = parse_num(&value(&arg)?, &arg)?,
            "--metrics-every-ms" => {
                let ms: u64 = parse_num(&value(&arg)?, &arg)? as u64;
                cfg.metrics_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--event-threads" => cfg.event_threads = parse_num(&value(&arg)?, &arg)?.max(1),
            "--max-conns" => cfg.max_conns = parse_num(&value(&arg)?, &arg)?,
            "--sync-conns" => cfg.sync_conns = true,
            "--chaos" => chaos = Some(value(&arg)?),
            "--schema" | "--dtd" | "--xsd" => {
                let path = value(&arg)?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let parsed = match arg.as_str() {
                    "--schema" => xmlschema::parse_schema(&text),
                    "--dtd" => xmlschema::parse_dtd(&text),
                    _ => xmlschema::parse_xsd(&text),
                }
                .map_err(|e| e.to_string())?;
                schema = Some(parsed);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if !other.starts_with('-') => docs.push(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }

    if let Some(n) = threads {
        ppf_pool::set_threads(n);
    }

    let source = match (xmark_scale, schema) {
        (Some(scale), None) => {
            eprintln!("generating XMark document at scale {scale} (seed {seed})");
            Source::XMark { scale, seed }
        }
        (None, Some(schema)) => {
            if docs.is_empty() {
                return Err(format!("no documents to load\n{USAGE}"));
            }
            Source::Docs {
                schema,
                paths: docs,
            }
        }
        (Some(_), Some(_)) => return Err("--xmark and --schema are mutually exclusive".into()),
        (None, None) => return Err(format!("no data source\n{USAGE}")),
    };
    let db = build_db(&source).map_err(|e| e.to_string())?;
    eprintln!(
        "{} relations, {} rows total; pool threads: {}",
        db.db().len(),
        db.db().total_rows(),
        ppf_pool::current_threads()
    );

    install_signal_handlers();
    let engine = SharedEngine::new(db);
    let reload_source = source.clone();
    let reloader: ReloadFn = Arc::new(move || build_db(&reload_source));
    let handle = serve_with_reload(engine, &listen, cfg, Some(reloader))
        .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    if let Some(spec) = chaos {
        let summary = handle
            .install_chaos(&spec)
            .map_err(|e| format!("--chaos: {e}"))?;
        eprintln!("{summary}");
    }
    eprintln!("connection core: {}", handle.core());
    // Announce readiness on stdout: scripts block on this exact prefix.
    println!("ppfd listening on {}", handle.addr());
    use std::io::Write;
    std::io::stdout().flush().ok();

    while !SHUTDOWN.load(SeqCst) && !handle.is_draining() {
        if RELOAD.swap(false, SeqCst) {
            eprintln!("SIGHUP received; reloading data source");
            match handle.reload() {
                Ok(version) => eprintln!("reload complete: serving snapshot v{version}"),
                Err(e) => eprintln!("reload failed [{}]: {e} (old snapshot kept)", e.kind()),
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if SHUTDOWN.load(SeqCst) {
        eprintln!("signal received; draining");
    }
    handle.shutdown();
    handle.join();

    // Flush the final counters where operators (and the CI smoke step)
    // can see them.
    eprintln!("--- final metrics ---");
    eprint!("{}", obs::Registry::global().snapshot().render());
    eprintln!("ppfd: drained cleanly");
    Ok(())
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag} wants a non-negative integer, got {s:?}"))
}
