//! `ppf-stress` — a load-generating client for `ppfd`.
//!
//! Opens K connections, drives a mixed XMark workload through each, and
//! treats the failure modes `ppfd` is designed to produce as expected:
//! `[overload]` rejections trigger exponential-backoff retry, connection
//! drops (chaos faults, idle reaping) trigger reconnect. At the end it
//! pulls the server's metrics snapshot and reconciles what it observed
//! against the server's own counters.
//!
//! ```text
//! ppf-stress --addr 127.0.0.1:7878 --conns 8 --requests 50
//! ppf-stress --chaos "panic=0.05 drop=0.05 slow=0.1:80 seed=7" --expect-shed --shutdown
//! ppf-stress --reload-storm --reloads 20 --chaos "reload_fault=io:0.3 seed=3"
//! ```
//!
//! `--reload-storm` adds a thread hammering the `reload` verb while the
//! query workers run, then reconciles snapshot identity: every ok
//! response must carry exactly one `version=` stamp, the server's
//! `engine.reload_swaps` / `engine.reload_failures` / `engine.reload_busy`
//! counters must match what the storm client observed, and under a
//! reload-only chaos spec the query stream must stay error-free.
//!
//! Exit status is 0 only if every request reached a typed outcome (no
//! untyped protocol garbage), every reconciliation check passed, and —
//! with `--shutdown` — the server acknowledged the drain.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppf_server::{Client, ErrorKind, Verb};

const USAGE: &str =
    "usage: ppf-stress [--addr ADDR] [--conns K] [--requests N] [--timeout-ms MS]\n\
     [--seed N] [--chaos SPEC] [--cancel-storm] [--expect-shed] [--shutdown]\n\
     [--idle-conns N] [--reload-storm] [--reloads N]";

/// Retry/backoff schedule for `[overload]` responses.
const BACKOFF_BASE: Duration = Duration::from_millis(10);
const BACKOFF_CAP: Duration = Duration::from_millis(500);
const MAX_RETRIES: u32 = 8;

#[derive(Clone)]
struct Config {
    addr: String,
    conns: usize,
    requests: usize,
    timeout_ms: u64,
    seed: u64,
    chaos: Option<String>,
    cancel_storm: bool,
    expect_shed: bool,
    shutdown: bool,
    /// Extra connections opened before the workload and held silent for
    /// its whole duration — pressure-tests idle-connection scalability
    /// alongside the chaos soak.
    idle_conns: usize,
    /// Hammer the `reload` verb while the workload runs and reconcile
    /// snapshot versions afterwards.
    reload_storm: bool,
    /// How many reloads the storm thread issues.
    reloads: usize,
}

/// What one worker saw, summed across its requests.
#[derive(Default)]
struct Tally {
    ok: u64,
    /// Typed `err` responses by kind tag (after retries for overload).
    errors: BTreeMap<&'static str, u64>,
    /// Overload responses that were retried (not final outcomes).
    overload_retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    gave_up: u64,
    /// I/O or framing failures that forced a reconnect.
    disconnects: u64,
    /// `exec` errors whose message marks a contained worker panic.
    panics_observed: u64,
    /// Cancel verbs acknowledged (cancel-storm mode).
    cancels_sent: u64,
    /// Snapshot versions stamped on ok responses, with counts.
    versions: BTreeMap<u64, u64>,
    /// Ok responses that arrived without a `version=` stamp.
    missing_version: u64,
}

impl Tally {
    fn fold(&mut self, other: Tally) {
        self.ok += other.ok;
        for (k, v) in other.errors {
            *self.errors.entry(k).or_insert(0) += v;
        }
        self.overload_retries += other.overload_retries;
        self.gave_up += other.gave_up;
        self.disconnects += other.disconnects;
        self.panics_observed += other.panics_observed;
        self.cancels_sent += other.cancels_sent;
        for (v, n) in other.versions {
            *self.versions.entry(v).or_insert(0) += n;
        }
        self.missing_version += other.missing_version;
    }
}

/// What the reload-storm thread saw, reconciled at the end against the
/// server's `engine.reload_*` counters.
#[derive(Default)]
struct StormTally {
    /// Reloads acknowledged ok — each one is a client-observed swap.
    swaps: u64,
    /// Typed reload failures (chaos faults, bad source) — not busy.
    failures: u64,
    /// `[overload]` busy refusals (another reload mid-stage).
    busy: u64,
    /// Reloads refused because the server was draining.
    refused_draining: u64,
    /// I/O failures that forced the storm connection to reconnect.
    disconnects: u64,
    /// Highest snapshot version any reload response was stamped with.
    max_version: u64,
}

/// xorshift64* — deterministic per-worker workload mixing without any
/// clock or external RNG dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("ppf-stress: FAIL: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        addr: "127.0.0.1:7878".to_string(),
        conns: 8,
        requests: 50,
        timeout_ms: 5_000,
        seed: 1,
        chaos: None,
        cancel_storm: false,
        expect_shed: false,
        shutdown: false,
        idle_conns: 0,
        reload_storm: false,
        reloads: 20,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value(&arg)?,
            "--conns" => cfg.conns = num(&value(&arg)?, &arg)?,
            "--requests" => cfg.requests = num(&value(&arg)?, &arg)?,
            "--timeout-ms" => cfg.timeout_ms = num(&value(&arg)?, &arg)? as u64,
            "--seed" => cfg.seed = num(&value(&arg)?, &arg)? as u64,
            "--chaos" => cfg.chaos = Some(value(&arg)?),
            "--cancel-storm" => cfg.cancel_storm = true,
            "--expect-shed" => cfg.expect_shed = true,
            "--shutdown" => cfg.shutdown = true,
            "--idle-conns" => cfg.idle_conns = num(&value(&arg)?, &arg)?,
            "--reload-storm" => cfg.reload_storm = true,
            "--reloads" => cfg.reloads = num(&value(&arg)?, &arg)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag} wants a non-negative integer, got {s:?}"))
}

fn run() -> Result<(), String> {
    let cfg = parse_args()?;
    let io_timeout = Duration::from_millis(cfg.timeout_ms + 5_000);

    // Install the fault plan (if any) over a control connection before
    // the workers start, so every worker request is exposed to it.
    if let Some(spec) = &cfg.chaos {
        let mut ctl = Client::connect(&cfg.addr, io_timeout)
            .map_err(|e| format!("cannot connect to {}: {e}", cfg.addr))?;
        let resp = ctl
            .request("chaos-setup", Verb::Chaos, &[], spec)
            .map_err(|e| format!("chaos install failed: {e}"))?;
        match resp.result {
            Ok(summary) => eprintln!("chaos: {summary}"),
            Err((kind, msg)) => {
                return Err(format!(
                    "chaos install rejected ({}) — {msg}",
                    kind.as_str()
                ))
            }
        }
    }

    // Park the idle herd before the workload starts so the whole soak —
    // chaos faults included — runs with the event loops also carrying N
    // silent connections. They are held open until after reconciliation.
    let mut idlers: Vec<Client> = Vec::with_capacity(cfg.idle_conns);
    for n in 0..cfg.idle_conns {
        let c = Client::connect(&cfg.addr, io_timeout)
            .map_err(|e| format!("idle conn {n}/{} failed: {e}", cfg.idle_conns))?;
        idlers.push(c);
    }
    if cfg.idle_conns > 0 {
        eprintln!("ppf-stress: parked {} idle connections", cfg.idle_conns);
    }

    let queries: Vec<String> = xmark::xmark_queries()
        .into_iter()
        .map(|(_, q)| q.to_string())
        .collect();
    let queries = Arc::new(queries);
    let shed_seen = Arc::new(AtomicU64::new(0));

    eprintln!(
        "ppf-stress: {} connections x {} requests against {}",
        cfg.conns, cfg.requests, cfg.addr
    );
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..cfg.conns {
        let cfg = cfg.clone();
        let queries = Arc::clone(&queries);
        let shed_seen = Arc::clone(&shed_seen);
        workers.push(
            std::thread::Builder::new()
                .name(format!("stress-{conn}"))
                .spawn(move || worker(conn, &cfg, &queries, &shed_seen, io_timeout))
                .map_err(|e| format!("spawn failed: {e}"))?,
        );
    }
    let storm = if cfg.reload_storm {
        let cfg = cfg.clone();
        eprintln!("ppf-stress: reload storm of {} reloads", cfg.reloads);
        Some(
            std::thread::Builder::new()
                .name("reload-storm".to_string())
                .spawn(move || reload_storm(&cfg, io_timeout))
                .map_err(|e| format!("spawn failed: {e}"))?,
        )
    } else {
        None
    };
    let mut total = Tally::default();
    for w in workers {
        match w.join() {
            Ok(t) => total.fold(t),
            Err(_) => return Err("a worker thread panicked".to_string()),
        }
    }
    let storm = match storm {
        Some(handle) => match handle.join() {
            Ok(t) => Some(t),
            Err(_) => return Err("the reload-storm thread panicked".to_string()),
        },
        None => None,
    };
    let elapsed = started.elapsed();

    // Pull the server's own view and reconcile.
    let mut ctl = Client::connect(&cfg.addr, io_timeout)
        .map_err(|e| format!("cannot reconnect for stats: {e}"))?;
    if cfg.reload_storm {
        // One probe after the storm has fully drained: it must be served
        // from the final snapshot, which also guarantees the version set
        // spans the storm even if the workers raced ahead of it.
        let resp = ctl
            .request("storm-probe", Verb::Query, &[], "/site")
            .map_err(|e| format!("post-storm probe failed: {e}"))?;
        let version = resp.version();
        record(&mut total, version, &resp.result);
    }
    let stats = match ctl
        .request("stats-final", Verb::Stats, &[], "")
        .map_err(|e| format!("stats request failed: {e}"))?
        .result
    {
        Ok(body) => body,
        Err((kind, msg)) => return Err(format!("stats rejected ({}) — {msg}", kind.as_str())),
    };

    let issued = (cfg.conns * cfg.requests) as u64;
    let typed_errors: u64 = total.errors.values().sum();
    println!("--- ppf-stress summary ---");
    println!("elapsed           {:.2}s", elapsed.as_secs_f64());
    println!("requests issued   {issued}");
    println!("ok                {}", total.ok);
    for (kind, n) in &total.errors {
        println!("err {kind:<13} {n}");
    }
    println!("overload retries  {}", total.overload_retries);
    println!("gave up           {}", total.gave_up);
    println!("disconnects       {}", total.disconnects);
    println!("panics contained  {}", total.panics_observed);
    if cfg.cancel_storm {
        println!("cancels sent      {}", total.cancels_sent);
    }

    let mut failures: Vec<String> = Vec::new();

    // Every issued request must end in a typed outcome: ok, a typed err,
    // an abandoned retry loop, or a disconnect mid-request. Nothing may
    // be simply unaccounted for.
    let accounted = total.ok + typed_errors + total.gave_up + total.disconnects;
    if accounted < issued {
        failures.push(format!(
            "{} of {issued} requests have no typed outcome",
            issued - accounted
        ));
    }

    let shed = counter(&stats, "server.shed");
    if cfg.expect_shed && shed == 0 {
        failures.push("expected server.shed > 0 under forced overload, got 0".to_string());
    }
    let overloads_seen = total.overload_retries + shed_seen.load(Relaxed);
    if shed > 0 && overloads_seen == 0 {
        failures.push(format!(
            "server counted {shed} sheds but no client saw an overload response"
        ));
    }

    if cfg.chaos.is_some() {
        let faults_panic = counter(&stats, "server.faults.panic");
        let faults_drop = counter(&stats, "server.faults.drop");
        if total.panics_observed > faults_panic {
            failures.push(format!(
                "observed {} contained panics but server injected only {faults_panic}",
                total.panics_observed
            ));
        }
        if faults_drop > 0 && total.disconnects == 0 {
            failures.push(format!(
                "server injected {faults_drop} connection drops but no client disconnected"
            ));
        }
        if counter(&stats, "server.panics_contained") < faults_panic {
            failures.push(format!(
                "server.panics_contained {} < server.faults.panic {faults_panic} — a panic escaped?",
                counter(&stats, "server.panics_contained")
            ));
        }
    }

    // Reconcile snapshot identity after a reload storm: the server's own
    // reload counters must match what the storm client observed, and
    // every ok response must have been attributable to exactly one
    // snapshot version.
    if let Some(storm) = &storm {
        let srv_attempts = counter(&stats, "engine.reload_attempts");
        let srv_swaps = counter(&stats, "engine.reload_swaps");
        let srv_failures = counter(&stats, "engine.reload_failures");
        let srv_busy = counter(&stats, "engine.reload_busy");
        let distinct = total.versions.len();
        let stamped: u64 = total.versions.values().sum();

        println!("--- reload storm ---");
        println!("swaps observed    {}", storm.swaps);
        println!("failures observed {}", storm.failures);
        println!("busy refusals     {}", storm.busy);
        println!("draining refusals {}", storm.refused_draining);
        println!("storm disconnects {}", storm.disconnects);
        println!("versions seen     {distinct} distinct across {stamped} ok responses");
        println!("engine.reload_attempts {srv_attempts}");
        println!("engine.reload_swaps    {srv_swaps}");
        println!("engine.reload_failures {srv_failures}");
        println!("engine.reload_busy     {srv_busy}");

        if total.missing_version > 0 {
            failures.push(format!(
                "{} ok responses carried no snapshot version stamp",
                total.missing_version
            ));
        }
        if srv_attempts != srv_swaps + srv_failures + srv_busy {
            failures.push(format!(
                "reload accounting broken: {srv_attempts} attempts != \
                 {srv_swaps} swaps + {srv_failures} failures + {srv_busy} busy"
            ));
        }
        // With an intact storm connection every reload outcome was
        // observed, so the two ledgers must agree exactly. (A severed
        // connection can lose a response whose reload still landed.)
        if storm.disconnects == 0 {
            if srv_swaps != storm.swaps {
                failures.push(format!(
                    "server counted {srv_swaps} snapshot swaps but the storm observed {}",
                    storm.swaps
                ));
            }
            if srv_failures != storm.failures {
                failures.push(format!(
                    "server counted {srv_failures} reload failures but the storm observed {}",
                    storm.failures
                ));
            }
            if srv_busy != storm.busy {
                failures.push(format!(
                    "server counted {srv_busy} busy refusals but the storm observed {}",
                    storm.busy
                ));
            }
        }
        // The post-storm probe pinned the final snapshot, so the highest
        // version any client saw is exactly the seed version plus every
        // swap — no response may claim a snapshot that never served.
        let max_seen = total
            .versions
            .keys()
            .max()
            .copied()
            .unwrap_or(0)
            .max(storm.max_version);
        if max_seen != 1 + srv_swaps {
            failures.push(format!(
                "highest stamped version {max_seen} != 1 + {srv_swaps} swaps"
            ));
        }
        if srv_swaps >= 3 && distinct < 2 {
            failures.push(format!(
                "{srv_swaps} swaps landed but clients saw only {distinct} distinct version(s)"
            ));
        }
        // Under a reload-only fault plan the query stream must be
        // collateral-free: reload failures stay on the reload path.
        if cfg.chaos.as_deref().is_some_and(is_reload_only_spec) {
            if typed_errors > 0 {
                failures.push(format!(
                    "{typed_errors} query errors under a reload-only fault plan"
                ));
            }
            if total.disconnects > 0 {
                failures.push(format!(
                    "{} disconnects under a reload-only fault plan",
                    total.disconnects
                ));
            }
        }
    }

    // The idle herd must have survived the entire soak: probe one parked
    // connection end-to-end and check the server still counts them all.
    if !idlers.is_empty() {
        let probe = idlers.last_mut().unwrap();
        match probe.request("idle-probe", Verb::Health, &[], "") {
            Ok(resp) => match resp.result {
                Ok(body) => {
                    let live: usize = body
                        .lines()
                        .find_map(|l| l.strip_prefix("active_conns: "))
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or(0);
                    // The control conn + the herd must all still be up.
                    if live < idlers.len() {
                        failures.push(format!(
                            "only {live} active conns after the soak; {} idlers were parked",
                            idlers.len()
                        ));
                    }
                    println!(
                        "idle conns        {} parked, {live} live on server",
                        idlers.len()
                    );
                }
                Err((kind, msg)) => failures.push(format!(
                    "idle-conn health probe rejected ({}) — {msg}",
                    kind.as_str()
                )),
            },
            Err(e) => failures.push(format!("an idle connection did not survive the soak: {e}")),
        }
    }

    println!("server.accepted   {}", counter(&stats, "server.accepted"));
    println!("server.queries    {}", counter(&stats, "server.queries"));
    println!("server.shed       {shed}");
    println!(
        "server.panics     {}",
        counter(&stats, "server.panics_contained")
    );
    println!(
        "pool.poison_recov {}",
        counter(&stats, "pool.poison_recoveries")
    );

    if cfg.shutdown {
        let resp = ctl
            .request("drain", Verb::Shutdown, &[], "")
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        match resp.result {
            Ok(body) => println!("shutdown          acknowledged ({body})"),
            Err((kind, msg)) => {
                failures.push(format!("shutdown rejected ({}) — {msg}", kind.as_str()))
            }
        }
    }

    if failures.is_empty() {
        println!("ppf-stress: PASS");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Hammer the `reload` verb from one dedicated connection, ~25ms apart,
/// while the query workers run. Every outcome is typed: an ok response
/// is a client-observed swap, `[overload]` is the engine's busy refusal,
/// `[shutdown]` is the drain refusal, anything else is a reload failure
/// (chaos fault, bad source). Counts are reconciled against the
/// server's own `engine.reload_*` counters afterwards.
fn reload_storm(cfg: &Config, io_timeout: Duration) -> StormTally {
    let mut tally = StormTally::default();
    let mut client: Option<Client> = None;
    for n in 0..cfg.reloads {
        let c = match &mut client {
            Some(c) => c,
            None => match Client::connect(&cfg.addr, io_timeout) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    tally.disconnects += 1;
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            },
        };
        let id = format!("storm-{n}");
        match c.request(&id, Verb::Reload, &[], "") {
            Ok(resp) => {
                if let Some(v) = resp.version() {
                    tally.max_version = tally.max_version.max(v);
                }
                match resp.result {
                    Ok(_) => tally.swaps += 1,
                    Err((ErrorKind::Overload, _)) => tally.busy += 1,
                    Err((ErrorKind::Shutdown, _)) => tally.refused_draining += 1,
                    Err(_) => tally.failures += 1,
                }
            }
            Err(_) => {
                client = None;
                tally.disconnects += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    tally
}

/// Drive one connection's worth of workload. Never panics: every error
/// path is counted and the worker moves on to its next request.
fn worker(
    conn: usize,
    cfg: &Config,
    queries: &[String],
    shed_seen: &AtomicU64,
    io_timeout: Duration,
) -> Tally {
    let mut tally = Tally::default();
    let mut rng = Rng::new(cfg.seed.wrapping_add(conn as u64).wrapping_mul(0x9e37_79b9));
    let mut client: Option<Client> = None;

    'requests: for n in 0..cfg.requests {
        let id = format!("c{conn}-{n}");
        let query = &queries[rng.below(queries.len() as u64) as usize];
        // Mostly queries, with explain/analyze sprinkled in to exercise
        // every read verb under load.
        let verb = match rng.below(10) {
            0 => Verb::Explain,
            1 => Verb::Analyze,
            _ => Verb::Query,
        };
        let timeout = cfg.timeout_ms.to_string();
        let options: [(&str, &str); 2] = [("timeout", &timeout), ("maxrows", "200000")];

        let mut backoff = BACKOFF_BASE;
        let mut attempts = 0u32;
        loop {
            // (Re)connect lazily; a refused connection during drain or
            // after a chaos drop counts as a disconnect and ends this
            // worker's run early rather than spinning.
            let c = match &mut client {
                Some(c) => c,
                None => match Client::connect(&cfg.addr, io_timeout) {
                    Ok(c) => client.insert(c),
                    Err(_) => {
                        tally.disconnects += 1;
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        attempts += 1;
                        if attempts > MAX_RETRIES {
                            tally.gave_up += cfg.requests as u64 - n as u64;
                            break 'requests;
                        }
                        continue;
                    }
                },
            };

            // Occasionally pipeline a cancel at the in-flight query to
            // exercise the cancellation path under load.
            if cfg.cancel_storm && rng.below(5) == 0 && verb == Verb::Query {
                if c.send(&id, verb, &options, query).is_err() {
                    client = None;
                    tally.disconnects += 1;
                    continue;
                }
                let cancel_id = format!("{id}-cancel");
                let _ = c.send(&cancel_id, Verb::Cancel, &[], &id);
                tally.cancels_sent += 1;
                // Two responses come back in completion order.
                let mut seen_query = false;
                for _ in 0..2 {
                    match c.recv() {
                        Ok(resp) if resp.id == id => {
                            seen_query = true;
                            record(&mut tally, resp.version(), &resp.result);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            client = None;
                            tally.disconnects += 1;
                            break;
                        }
                    }
                }
                if !seen_query && client.is_some() {
                    // Cancel response arrived but the query's never did;
                    // treat as a protocol-level loss.
                    tally.disconnects += 1;
                    client = None;
                }
                break;
            }

            match c.request(&id, verb, &options, query) {
                Ok(resp) => {
                    let version = resp.version();
                    match resp.result {
                        Err((ErrorKind::Overload, _)) => {
                            shed_seen.fetch_add(1, Relaxed);
                            attempts += 1;
                            if attempts > MAX_RETRIES {
                                tally.gave_up += 1;
                                break;
                            }
                            tally.overload_retries += 1;
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(BACKOFF_CAP);
                        }
                        other => {
                            record(&mut tally, version, &other);
                            break;
                        }
                    }
                }
                Err(_) => {
                    // Severed mid-request (chaos drop, idle reap, drain).
                    client = None;
                    tally.disconnects += 1;
                    break;
                }
            }
        }
    }
    tally
}

fn record(tally: &mut Tally, version: Option<u64>, result: &Result<String, (ErrorKind, String)>) {
    match result {
        Ok(_) => {
            tally.ok += 1;
            // Every successful read must be attributable to exactly one
            // serving snapshot.
            match version {
                Some(v) => *tally.versions.entry(v).or_insert(0) += 1,
                None => tally.missing_version += 1,
            }
        }
        Err((kind, msg)) => {
            *tally.errors.entry(kind.as_str()).or_insert(0) += 1;
            if *kind == ErrorKind::Exec && msg.contains("panic contained") {
                tally.panics_observed += 1;
            }
        }
    }
}

/// True when a chaos spec injects faults only into the reload path
/// (`reload_fault=...` tokens, plus `seed=`), so the query stream is
/// expected to run completely clean.
fn is_reload_only_spec(spec: &str) -> bool {
    let mut tokens = spec.split_whitespace().peekable();
    tokens.peek().is_some()
        && tokens.all(|t| t.starts_with("reload_fault=") || t.starts_with("seed="))
}

/// Pull one counter out of a rendered registry snapshot; 0 if absent.
fn counter(stats: &str, name: &str) -> u64 {
    for line in stats.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            if let Some(v) = parts.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    0
}
