pub use ppf_core;
pub use shred;
pub use xpath;
