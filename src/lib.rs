pub use ppf_core; pub use xpath; pub use shred;
