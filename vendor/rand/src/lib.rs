//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small, deterministic subset of the `rand 0.8` API it
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen_range` / `gen_bool`. The generator is SplitMix64 —
//! not the real StdRng (ChaCha12), but every consumer in this repo only
//! needs a seeded, reproducible stream, never a specific one.

/// Minimal core trait: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's `Standard` float.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a range.
///
/// The generic `SampleRange` impls below delegate here; keeping the
/// range impls generic (as the real crate does) is what lets integer
/// literal ranges like `0..26` infer their type from the call site.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),+ $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    // Modulo reduction; the bias is far below anything a
                    // test-data generator can observe.
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
                fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is fair game.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )+
    };
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+ $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    lo + (hi - lo) * unit as $t
                }
                fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    Self::sample_half_open(lo, hi, rng)
                }
            }
        )+
    };
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u8..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
            let f = rng.gen_range(1.0..500.0);
            assert!((1.0..500.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
