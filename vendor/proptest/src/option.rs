//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        // Same bias as real proptest's default: Some three times in four.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}

/// `proptest::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
