//! Regex-like string generation for `&str` strategies.
//!
//! Supports the pattern subset the workspace tests use: literal
//! characters, `\`-escapes, character classes (`[a-z' ]`, with ranges and
//! escapes), and the quantifiers `{m,n}`, `{m,}`, `{m}`, `*`, `+`, `?`.
//! `^` and `$` outside a class are ignored (anchors constrain matching,
//! not generation). Unsupported constructs fall back to literal
//! characters, which keeps bad patterns loud in the tests that consume
//! them rather than silently empty.

use crate::test_runner::TestRng;

/// Cap for open-ended quantifiers (`*`, `+`, `{m,}`).
const UNBOUNDED_CAP: u32 = 8;

struct Atom {
    /// The characters this atom can produce (singleton for a literal).
    choices: Vec<char>,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        i += 1;
        let choices = match c {
            '^' | '$' => continue, // anchors: no output
            '\\' if i < chars.len() => {
                let e = chars[i];
                i += 1;
                vec![e]
            }
            '[' => {
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let item = chars[i];
                    i += 1;
                    if item == '\\' && i < chars.len() {
                        set.push(chars[i]);
                        i += 1;
                    } else if i < chars.len()
                        && chars[i] == '-'
                        && i + 1 < chars.len()
                        && chars[i + 1] != ']'
                    {
                        let hi = chars[i + 1];
                        i += 2;
                        for v in item as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                    } else {
                        set.push(item);
                    }
                }
                i += 1; // consume ']'
                if set.is_empty() {
                    continue;
                }
                set
            }
            other => vec![other],
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '*' => {
                    i += 1;
                    (0, UNBOUNDED_CAP)
                }
                '+' => {
                    i += 1;
                    (1, UNBOUNDED_CAP)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}');
                    match close {
                        Some(off) => {
                            let body: String = chars[i + 1..i + off].iter().collect();
                            i += off + 1;
                            parse_bounds(&body)
                        }
                        None => (1, 1),
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_bounds(body: &str) -> (u32, u32) {
    match body.split_once(',') {
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
        Some((lo, hi)) => {
            let lo: u32 = lo.trim().parse().unwrap_or(0);
            let hi: u32 = match hi.trim() {
                "" => lo + UNBOUNDED_CAP,
                s => s.parse().unwrap_or(lo),
            };
            (lo, hi.max(lo))
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = atom.min + rng.below((atom.max - atom.min + 1) as usize) as u32;
        for _ in 0..n {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn class_with_repeat() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ab]{0,2}", &mut r);
            assert!(s.len() <= 2, "{s}");
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s}");
        }
    }

    #[test]
    fn ranges_and_literals() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-c]x", &mut r);
            assert_eq!(s.len(), 2);
            assert!(('a'..='c').contains(&s.chars().next().expect("len 2")));
            assert!(s.ends_with('x'));
        }
    }

    #[test]
    fn escapes_in_classes() {
        let mut r = rng();
        let allowed: Vec<char> = "az.*+?()[]{}|^$\\".chars().collect();
        for _ in 0..200 {
            let s = generate("[a-z.*+?()\\[\\]{}|^$\\\\]{0,10}", &mut r);
            assert!(s.len() <= 10);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || allowed.contains(&c),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{1,10}", &mut r);
            assert!(!s.is_empty() && s.len() <= 10);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)), "{s}");
        }
    }

    #[test]
    fn anchors_are_silent() {
        let mut r = rng();
        assert_eq!(generate("^$", &mut r), "");
        assert_eq!(generate("^ab$", &mut r), "ab");
    }
}
