//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Recursive strategies: `self` is the leaf case; `recurse` builds one
    /// level on top of the strategy so far. `depth` bounds the nesting;
    /// the sizing hints of real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.gen_value(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

/// Weighted choice between alternatives (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut r = rng.next_u64() % self.total_weight;
        for (w, strat) in &self.options {
            if r < *w as u64 {
                return strat.gen_value(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-like string generators (the subset parsed
/// by [`crate::pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
