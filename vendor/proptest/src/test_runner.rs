//! Deterministic case runner: seeded RNG, config, and the reject/fail
//! error type the assertion macros return.

/// SplitMix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(state: u64) -> TestRng {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-generated and
    /// not counted.
    Reject(String),
    /// `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: generate-and-check `cfg.cases` times. The per-test
/// seed mixes the test name so sibling properties see different streams;
/// set `PROPTEST_SEED` to reproduce a failing run.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x005E_ED0F_1234_5678u64)
        ^ fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < cfg.cases {
        attempt += 1;
        let mut rng = TestRng::from_seed(base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "[{name}] too many prop_assume! rejections \
                         ({rejected}; last: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "[{name}] property failed after {passed} passing case(s) \
                     (attempt {attempt}, no shrinking): {msg}"
                );
            }
        }
    }
}
