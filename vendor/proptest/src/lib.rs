//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_recursive` / `boxed`, plus range, tuple, `&str`-pattern and
//!   [`strategy::Just`] strategies and [`any`].
//! * [`collection::vec`] and [`option::of`].
//! * The `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//!   and `prop_assume!` macros.
//!
//! Differences from the real crate: generation is seeded deterministically
//! per test (override with `PROPTEST_SEED`), there is **no shrinking** —
//! a failing case reports the assertion message (which includes the
//! offending values) and stops — and `.proptest-regressions` files are
//! ignored.

pub mod collection;
pub mod option;
pub mod pattern;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

use strategy::Strategy;
use test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + (rng.next_u64() % 0x5F) as u8) as char
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( ($weight, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}: {}",
                    stringify!($cond),
                    file!(),
                    line!(),
                    format!($($fmt)*)
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}` at {}:{}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), file!(), line!(), lhs, rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), file!(), line!(),
                    format!($($fmt)*), lhs, rhs
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config $cfg; $($rest)* }
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases($cfg, stringify!($name), |rng| {
                    $( let $pat = $crate::strategy::Strategy::gen_value(&($strat), rng); )+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}
