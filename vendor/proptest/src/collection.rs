//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

pub trait IntoSizeRange {
    fn into_size_range(self) -> SizeRange;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> SizeRange {
        SizeRange {
            lo: self,
            hi_inclusive: self,
        }
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn into_size_range(self) -> SizeRange {
        assert!(self.start < self.end, "empty vec size range");
        SizeRange {
            lo: self.start,
            hi_inclusive: self.end - 1,
        }
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn into_size_range(self) -> SizeRange {
        assert!(self.start() <= self.end(), "empty vec size range");
        SizeRange {
            lo: *self.start(),
            hi_inclusive: *self.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into_size_range(),
    }
}
