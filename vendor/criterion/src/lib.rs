//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion's API the workspace benches
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, `criterion_group!`,
//! `criterion_main!`) on top of a plain wall-clock harness: calibrate,
//! collect samples, report min/median/mean per iteration.
//!
//! Environment knobs:
//! * `CRITERION_MEASURE_MS` — per-benchmark measurement budget
//!   (default 150 ms).
//! * `CRITERION_SAMPLES` — overrides the sample count (default 10, or
//!   whatever `sample_size()` set).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing state handed to the `|b| b.iter(...)` closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Identifier for one parameterized benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

fn measure_ms() -> u64 {
    std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150)
}

fn sample_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Run one benchmark: calibrate the per-iteration cost, split the
/// measurement budget into samples, and print a one-line summary.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut routine: F) {
    let samples = sample_override().unwrap_or(samples).max(2);
    // Calibration run (also serves as warm-up).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter_ns = (b.elapsed.as_nanos() as u64).max(1);
    let budget_ns = measure_ms() * 1_000_000;
    let iters = ((budget_ns / samples as u64) / per_iter_ns).clamp(1, 1_000_000);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        times.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let min = times[0];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "bench: {name:<50} median {:>12} min {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(mean),
        samples,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_one(name, 10, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
